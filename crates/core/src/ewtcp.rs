//! EWTCP — equally-weighted TCP on every subflow (§2.1).

use crate::algorithm::MultipathCc;
use crate::snapshot::{active_count, SubflowSnapshot};

/// Where EWTCP's per-subflow weight `b` comes from.
///
/// The paper's experiments fix the path set at connection setup, so a
/// build-time `1/n` was historically frozen into the controller. Runtime
/// path management (ADD/REMOVE_ADDR) broke that assumption: a connection
/// that joins a third subflow mid-transfer must weight each path `1/3`
/// from that point on, not the stale `1/2` it was built with.
#[derive(Debug, Clone, Copy, PartialEq)]
enum WeightMode {
    /// A fixed weight chosen at construction (explicit-weight ablations and
    /// the fluid model, whose path set never changes).
    Fixed(f64),
    /// `b = 1/n` recomputed from the live subflow count of each snapshot
    /// slice — correct under runtime join/close. Equal to `Fixed(1/n)`
    /// bit-for-bit while all `n` subflows remain active.
    LiveEqualSplit,
}

/// Equally-Weighted TCP: each subflow runs an AIMD loop that is a scaled-down
/// regular TCP, so that the connection as a whole takes one TCP's share at a
/// shared bottleneck without any explicit bottleneck detection (§2.1,
/// following Honda et al.).
///
/// We parameterize EWTCP by the per-subflow **throughput weight** `b`: at
/// equilibrium each subflow obtains a `b` fraction of the window a regular
/// TCP would obtain under the same loss rate. The standard AIMD balance
/// argument (paper eq. (2) style) shows that an increase of `α/w_r` per ACK
/// and a decrease of `w_r/2` per loss yields an equilibrium window
/// `ŵ_r = √α·√(2/p)`, so a weight of `b` requires `α = b²`.
///
/// ### Relation to the paper's `a`
///
/// The paper's pseudocode writes the increase as `a/w_r` with `a = 1/√n` and
/// states "each subflow gets window size proportional to a²"; for the stated
/// fairness outcome (an `n`-path connection matching one TCP at a shared
/// bottleneck, and §2.3's "EWTCP is half as aggressive … on each path" for
/// `n = 2`) the per-subflow window must be `(1/n)·ŵ_TCP`, i.e. the effective
/// AIMD increase parameter must be `α = 1/n² = a⁴`. We therefore expose the
/// weight directly: [`Ewtcp::equal_split`]`(n)` gives `b = 1/n`, which is the
/// behaviour every numeric example in the paper assumes.
#[derive(Debug, Clone, Copy)]
pub struct Ewtcp {
    /// Per-subflow throughput weight `b` (fraction of a regular TCP's window
    /// each subflow targets at equilibrium), or the rule that derives it.
    mode: WeightMode,
}

impl Ewtcp {
    /// EWTCP with an explicit per-subflow throughput weight `b ∈ (0, 1]`.
    ///
    /// # Panics
    /// Panics if the weight is not positive and finite.
    pub fn with_weight(weight: f64) -> Self {
        assert!(weight.is_finite() && weight > 0.0, "EWTCP weight must be positive");
        Self { mode: WeightMode::Fixed(weight) }
    }

    /// The paper's configuration: `n` subflows each weighted `1/n`, so the
    /// connection aggregates to exactly one TCP's throughput when all
    /// subflows share one bottleneck with equal RTTs.
    ///
    /// The weight is **frozen** at `1/n` — right for the fluid model and
    /// fixed-path-set analyses. Connections whose path set can change at
    /// runtime must use [`Ewtcp::live_equal_split`] instead.
    ///
    /// # Panics
    /// Panics if `n_subflows == 0`.
    pub fn equal_split(n_subflows: usize) -> Self {
        assert!(n_subflows > 0, "a connection has at least one subflow");
        Self::with_weight(1.0 / n_subflows as f64)
    }

    /// The paper's `1/n` configuration with `n` recomputed from the live
    /// subflow count of every snapshot slice, so the weight tracks runtime
    /// subflow join/close instead of going stale.
    pub fn live_equal_split() -> Self {
        Self { mode: WeightMode::LiveEqualSplit }
    }

    /// The per-subflow weight `b` for the given snapshot slice.
    pub fn weight_for(&self, subs: &[SubflowSnapshot]) -> f64 {
        match self.mode {
            WeightMode::Fixed(w) => w,
            WeightMode::LiveEqualSplit => 1.0 / active_count(subs) as f64,
        }
    }

    /// The effective AIMD increase parameter `α = b²` (the amount the window
    /// grows per RTT, in packets) for the given snapshot slice.
    pub fn alpha_for(&self, subs: &[SubflowSnapshot]) -> f64 {
        let b = self.weight_for(subs);
        b * b
    }
}

impl MultipathCc for Ewtcp {
    fn name(&self) -> &'static str {
        "EWTCP"
    }

    /// Increase `α/w_r` per ACK: a weighted TCP on this subflow alone.
    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        self.alpha_for(subs) / subs[r].cwnd
    }

    /// "For each loss on path r, decrease window w_r by w_r/2."
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_split_weight_is_one_over_n() {
        assert!((Ewtcp::equal_split(2).weight_for(&[]) - 0.5).abs() < 1e-12);
        assert!((Ewtcp::equal_split(4).weight_for(&[]) - 0.25).abs() < 1e-12);
    }

    /// The PR 7 churn bug: a connection built with two paths that joins a
    /// third mid-transfer must apply the same increase rule as a fresh
    /// three-path build. A frozen `equal_split(2)` weight keeps `b = 1/2`
    /// (α = 1/4) after the join; the live mode recomputes `b = 1/3`.
    #[test]
    fn live_weight_tracks_subflow_joins_and_closes() {
        let three = [
            SubflowSnapshot::new(8.0, 0.02),
            SubflowSnapshot::new(8.0, 0.02),
            SubflowSnapshot::new(2.0, 0.02),
        ];
        let live = Ewtcp::live_equal_split();
        let fresh3 = Ewtcp::equal_split(3);
        assert_eq!(
            live.increase_per_ack(0, &three).to_bits(),
            fresh3.increase_per_ack(0, &three).to_bits(),
            "post-join increase must match a fresh 3-path build exactly"
        );
        // The frozen build-time weight demonstrates the pre-fix behaviour.
        let stale = Ewtcp::equal_split(2);
        assert!(stale.increase_per_ack(0, &three) > live.increase_per_ack(0, &three));
        // A closed (but still slot-holding) subflow drops back out of `n`.
        let churned = [
            three[0],
            three[1],
            SubflowSnapshot::new(1.0, 0.02).active(false),
        ];
        assert_eq!(
            live.increase_per_ack(0, &churned).to_bits(),
            Ewtcp::equal_split(2).increase_per_ack(0, &churned).to_bits()
        );
    }

    /// While every subflow stays active, live mode is bit-identical to the
    /// frozen `1/n` — existing no-churn histories cannot shift.
    #[test]
    fn live_weight_is_bit_identical_to_fixed_without_churn() {
        for n in 1..=5usize {
            let subs: Vec<SubflowSnapshot> =
                (0..n).map(|i| SubflowSnapshot::new(4.0 + i as f64, 0.05)).collect();
            for r in 0..n {
                assert_eq!(
                    Ewtcp::live_equal_split().increase_per_ack(r, &subs).to_bits(),
                    Ewtcp::equal_split(n).increase_per_ack(r, &subs).to_bits()
                );
            }
        }
    }

    #[test]
    fn single_path_ewtcp_is_regular_tcp() {
        let cc = Ewtcp::equal_split(1);
        let subs = [SubflowSnapshot::new(8.0, 0.02)];
        assert!((cc.increase_per_ack(0, &subs) - 1.0 / 8.0).abs() < 1e-12);
        assert!((cc.window_after_loss(0, &subs) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn increase_scales_with_weight_squared() {
        let subs = [SubflowSnapshot::new(10.0, 0.02), SubflowSnapshot::new(10.0, 0.02)];
        let half = Ewtcp::with_weight(0.5);
        let full = Ewtcp::with_weight(1.0);
        let ratio = half.increase_per_ack(0, &subs) / full.increase_per_ack(0, &subs);
        assert!((ratio - 0.25).abs() < 1e-12);
    }

    /// Equilibrium check from the balance argument: with loss rate p applied
    /// in the fluid sense, the equilibrium window should be b·√(2/p). Here we
    /// verify the algebraic identity increase(ŵ) = p·ŵ/2 at ŵ = b√(2/p).
    #[test]
    fn equilibrium_window_is_weighted_tcp_window() {
        let b = 0.5;
        let p = 0.01_f64;
        let cc = Ewtcp::with_weight(b);
        let w_hat = b * (2.0 / p).sqrt();
        let subs = [SubflowSnapshot::new(w_hat, 0.1)];
        let inc = cc.increase_per_ack(0, &subs);
        let dec_rate = p * w_hat / 2.0;
        assert!((inc - dec_rate).abs() / dec_rate < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_weight_rejected() {
        let _ = Ewtcp::with_weight(0.0);
    }

    #[test]
    #[should_panic]
    fn zero_subflows_rejected() {
        let _ = Ewtcp::equal_split(0);
    }
}
