//! The per-subflow state visible to a congestion-control rule.

// lint:digest-surface — every pub struct here is sim-visible state and must
// implement `DetDigest` (enforced by `cargo xtask lint`).

/// A read-only snapshot of one subflow's congestion state, in the units the
/// paper uses: congestion windows in **packets** and round-trip times in
/// **seconds**.
///
/// The paper (§2) notes that real implementations maintain windows in bytes;
/// like the paper's exposition we use packets throughout, and the simulator
/// and protocol layer convert at their boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SubflowSnapshot {
    /// Congestion window of this subflow, in packets. Always ≥ the
    /// algorithm's probing floor (1 packet in our implementation, §2.4).
    pub cwnd: f64,
    /// Smoothed round-trip time of this subflow, in seconds
    /// ("We use a smoothed RTT estimator, computed similarly to TCP", §2).
    pub rtt: f64,
    /// Whether the subflow currently exists as a usable path. Runtime path
    /// management (ADD/REMOVE_ADDR, §3.2g) can close subflows mid-transfer;
    /// a closed subflow keeps its arena slot (and therefore its snapshot
    /// slot) but must not count toward path-cardinality-dependent rules
    /// such as EWTCP's `1/n` weight.
    pub active: bool,
}

crate::impl_det_digest!(SubflowSnapshot { cwnd, rtt, active });

impl SubflowSnapshot {
    /// Convenience constructor for an active subflow.
    pub fn new(cwnd: f64, rtt: f64) -> Self {
        Self { cwnd, rtt, active: true }
    }

    /// Override the active flag (builder style).
    pub fn active(mut self, active: bool) -> Self {
        self.active = active;
        self
    }

    /// The subflow's instantaneous rate estimate `w_r / RTT_r` in packets
    /// per second — the quantity the fairness goals (3)–(4) are written in.
    pub fn rate(&self) -> f64 {
        self.cwnd / self.rtt
    }
}

/// Sum of windows across subflows (`w_total` in the paper).
pub fn total_window(subs: &[SubflowSnapshot]) -> f64 {
    subs.iter().map(|s| s.cwnd).sum()
}

/// Number of live (non-closed) subflows in a snapshot slice. At least one
/// subflow is always counted: a connection whose every path was withdrawn
/// still holds its last subflow at the probing floor, and cardinality-based
/// weights (EWTCP's `1/n`) must not divide by zero meanwhile.
pub fn active_count(subs: &[SubflowSnapshot]) -> usize {
    subs.iter().filter(|s| s.active).count().max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_is_window_over_rtt() {
        let s = SubflowSnapshot::new(20.0, 0.1);
        assert!((s.rate() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn total_window_sums() {
        let subs = [SubflowSnapshot::new(3.0, 0.1), SubflowSnapshot::new(7.0, 0.2)];
        assert!((total_window(&subs) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn total_window_empty_is_zero() {
        assert_eq!(total_window(&[]), 0.0);
    }

    #[test]
    fn active_count_ignores_closed_subflows_with_a_floor_of_one() {
        let subs = [
            SubflowSnapshot::new(3.0, 0.1),
            SubflowSnapshot::new(7.0, 0.2).active(false),
            SubflowSnapshot::new(5.0, 0.3),
        ];
        assert_eq!(active_count(&subs), 2);
        let all_closed = [SubflowSnapshot::new(1.0, 0.1).active(false)];
        assert_eq!(active_count(&all_closed), 1, "floor of one live path");
        assert_eq!(active_count(&[]), 1);
    }
}
