//! SEMICOUPLED — coupled increases, per-subflow decreases (§2.4).

use crate::algorithm::MultipathCc;
use crate::snapshot::{total_window, SubflowSnapshot};

/// The SEMICOUPLED algorithm (§2.4): the compromise between COUPLED's
/// congestion balancing and EWTCP's robust probing.
///
/// * Each ACK on path `r`: `w_r += a/w_total`.
/// * Each loss on path `r`: `w_r -= w_r/2`.
///
/// Because decreases are proportional to the *subflow's own* window, every
/// path keeps a meaningful share of traffic: at equilibrium (paper §2.4)
///
/// ```text
/// ŵ_r ≈ √(2a) · (1/p_r) / √(Σ_s 1/p_s)
/// ```
///
/// e.g. with paths at 1%, 1% and 5% loss the split is 45% / 45% / 10% —
/// "intermediate between EWTCP (33% each) and COUPLED (0% on the more
/// congested path)".
///
/// The aggressiveness constant `a` can be tuned for fairness in simple
/// equal-RTT scenarios; the principled, RTT-aware choice of `a` is exactly
/// what the final MPTCP algorithm (§2.5) adds.
#[derive(Debug, Clone, Copy)]
pub struct SemiCoupled {
    /// Aggressiveness constant `a` (§2.4: "a is a constant which controls
    /// the aggressiveness").
    a: f64,
}

impl SemiCoupled {
    /// SEMICOUPLED with the neutral aggressiveness `a = 1`, which makes a
    /// single-path connection behave exactly like regular TCP.
    pub fn new() -> Self {
        Self::with_aggressiveness(1.0)
    }

    /// SEMICOUPLED with an explicit aggressiveness constant.
    ///
    /// # Panics
    /// Panics if `a` is not positive and finite.
    pub fn with_aggressiveness(a: f64) -> Self {
        assert!(a.is_finite() && a > 0.0, "aggressiveness must be positive");
        Self { a }
    }

    /// The aggressiveness constant.
    pub fn aggressiveness(&self) -> f64 {
        self.a
    }
}

impl Default for SemiCoupled {
    fn default() -> Self {
        Self::new()
    }
}

impl MultipathCc for SemiCoupled {
    fn name(&self) -> &'static str {
        "SEMICOUPLED"
    }

    /// "For each ACK on path r, increase window w_r by a/w_total."
    fn increase_per_ack(&self, _r: usize, subs: &[SubflowSnapshot]) -> f64 {
        self.a / total_window(subs)
    }

    /// "For each loss on path r, decrease window w_r by w_r/2."
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

/// The paper's closed-form SEMICOUPLED equilibrium: window on path `r` given
/// per-path loss rates, `ŵ_r ≈ √(2a)·(1/p_r)/√(Σ 1/p_s)` (§2.4).
pub fn semicoupled_equilibrium(a: f64, loss: &[f64]) -> Vec<f64> {
    let inv_sum: f64 = loss.iter().map(|p| 1.0 / p).sum();
    loss.iter().map(|p| (2.0 * a).sqrt() * (1.0 / p) / inv_sum.sqrt()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_semicoupled_is_regular_tcp() {
        let cc = SemiCoupled::new();
        let subs = [SubflowSnapshot::new(16.0, 0.03)];
        assert!((cc.increase_per_ack(0, &subs) - 1.0 / 16.0).abs() < 1e-12);
        assert!((cc.window_after_loss(0, &subs) - 8.0).abs() < 1e-12);
    }

    /// §2.4's worked example: three paths with drop probabilities 1%, 1% and
    /// 5% split the connection's weight 45% / 45% / 10%.
    #[test]
    fn paper_split_example_45_45_10() {
        let w = semicoupled_equilibrium(1.0, &[0.01, 0.01, 0.05]);
        let total: f64 = w.iter().sum();
        let shares: Vec<f64> = w.iter().map(|x| x / total).collect();
        assert!((shares[0] - 100.0 / 220.0).abs() < 1e-9); // ≈ 45.45%
        assert!((shares[1] - 100.0 / 220.0).abs() < 1e-9);
        assert!((shares[2] - 20.0 / 220.0).abs() < 1e-9); // ≈ 9.09%
    }

    /// Balance check: at the closed-form equilibrium the per-ACK increase
    /// matches the expected per-packet decrease p_r·ŵ_r/2 on every path.
    #[test]
    fn closed_form_satisfies_balance_equations() {
        let a = 0.7;
        let loss = [0.002, 0.01, 0.03];
        let w = semicoupled_equilibrium(a, &loss);
        let w_total: f64 = w.iter().sum();
        for (r, (&wr, &p)) in w.iter().zip(loss.iter()).enumerate() {
            let inc = a / w_total;
            let dec = p * wr / 2.0;
            assert!(
                (inc - dec).abs() / dec < 1e-9,
                "path {r}: inc {inc} vs dec {dec}"
            );
        }
    }

    #[test]
    fn higher_aggressiveness_means_bigger_increase() {
        let subs = [SubflowSnapshot::new(5.0, 0.1), SubflowSnapshot::new(5.0, 0.1)];
        let meek = SemiCoupled::with_aggressiveness(0.5);
        let bold = SemiCoupled::with_aggressiveness(2.0);
        assert!(bold.increase_per_ack(0, &subs) > meek.increase_per_ack(0, &subs));
    }

    #[test]
    #[should_panic]
    fn non_positive_aggressiveness_rejected() {
        let _ = SemiCoupled::with_aggressiveness(-1.0);
    }
}
