//! OLIA — the Opportunistic Linked-Increases Algorithm (Khalili et al.,
//! RFC 6356's successor proposal; fluid dynamics in Peng et al.,
//! arXiv:1308.3119).
//!
//! OLIA fixes LIA's non-Pareto-optimality by steering window toward the
//! *best* paths (largest inter-loss distance per RTT²) away from the paths
//! that merely have the largest windows. That steering term needs per-path
//! **inter-loss counters** — genuinely mutable state — so the packet-level
//! controller is a [`StatefulCc`] ([`Olia`]), while the fluid oracle uses
//! the pure twin [`OliaFluid`] whose inter-loss distances are pinned to
//! the measured loss rates (`ℓ_p ≈ 1/p_p`).
//!
//! Per ACK on path `r` (windows in packets, RTTs in seconds):
//!
//! ```text
//! Δw_r = (w_r/rtt_r²) / (Σ_k w_k/rtt_k)²  +  ε_r / w_r
//! ```
//!
//! with the ε terms assigned from two path sets: `M` = paths with the
//! largest window, `B` = best paths by `ℓ_p/rtt_p²`. If some best path is
//! not a max-window path (`B\M ≠ ∅`), those paths get
//! `ε = 1/(n·|B\M|)` and the max-window paths get `ε = −1/(n·|M|)`;
//! otherwise all ε are zero. Per loss: `w_r ← w_r/2`.
//!
//! Set membership is evaluated with a relative tie band (`TIE_TOL`): exact
//! float argmax would make the ε terms chatter between equivalent paths,
//! which both the packet sender and the fluid integrator (a sliding-mode
//! equilibrium otherwise) are sensitive to.
// lint:digest-surface

use crate::algorithm::MultipathCc;
use crate::digest::{DetDigest, DigestWriter};
use crate::snapshot::{active_count, SubflowSnapshot};
use crate::stateful::{AckAction, StatefulCc};

/// Relative tie tolerance for the `B` (best-path) and `M` (max-window)
/// set memberships.
const TIE_TOL: f64 = 1e-6;

/// The shared increase rule: `l(p)` supplies path `p`'s inter-loss
/// distance estimate (counters for the packet controller, `1/p_p` for the
/// fluid twin).
fn olia_increase(r: usize, subs: &[SubflowSnapshot], l: impl Fn(usize) -> f64) -> f64 {
    let n = active_count(subs) as f64;
    let mut sum_rate = 0.0_f64;
    let mut max_metric = f64::NEG_INFINITY;
    let mut max_w = f64::NEG_INFINITY;
    for s in subs.iter().filter(|s| s.active) {
        sum_rate += s.cwnd / s.rtt;
    }
    if sum_rate <= 0.0 || !sum_rate.is_finite() {
        return 0.0;
    }
    for (p, s) in subs.iter().enumerate().filter(|(_, s)| s.active) {
        max_metric = max_metric.max(l(p) / (s.rtt * s.rtt));
        max_w = max_w.max(s.cwnd);
    }
    // Membership with a relative tie band, and the counts the ε terms need.
    let in_m = |p: usize| subs[p].cwnd >= max_w * (1.0 - TIE_TOL);
    let in_b = |p: usize| l(p) / (subs[p].rtt * subs[p].rtt) >= max_metric * (1.0 - TIE_TOL);
    let mut n_m = 0usize;
    let mut n_b_not_m = 0usize;
    for (p, _) in subs.iter().enumerate().filter(|(_, s)| s.active) {
        if in_m(p) {
            n_m += 1;
        } else if in_b(p) {
            n_b_not_m += 1;
        }
    }
    let eps = if n_b_not_m > 0 && subs[r].active {
        if !in_m(r) && in_b(r) {
            1.0 / (n * n_b_not_m as f64)
        } else if in_m(r) {
            -1.0 / (n * n_m as f64)
        } else {
            0.0
        }
    } else {
        0.0
    };
    let base = (subs[r].cwnd / (subs[r].rtt * subs[r].rtt)) / (sum_rate * sum_rate);
    base + eps / subs[r].cwnd
}

/// Per-path inter-loss counters: `l1` is the number of packets ACKed
/// between the last two losses, `l2` the packets ACKed since the last
/// loss; the estimate used is `max(l1, l2)` so a path that stopped losing
/// keeps looking better as it proves itself.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OliaPathState {
    /// Packets ACKed between the previous two loss events.
    pub l1: f64,
    /// Packets ACKed since the most recent loss event.
    pub l2: f64,
}

crate::impl_det_digest!(OliaPathState { l1, l2 });

impl OliaPathState {
    fn inter_loss(&self) -> f64 {
        self.l1.max(self.l2).max(1.0)
    }
}

/// The packet-level OLIA controller.
#[derive(Debug, Clone, Default)]
pub struct Olia {
    /// One counter pair per subflow slot, grown on demand (runtime joins
    /// extend the snapshot slice).
    paths: Vec<OliaPathState>,
}

crate::impl_det_digest!(Olia { paths });

impl Olia {
    /// A fresh controller (no loss history).
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, len: usize) {
        if self.paths.len() < len {
            self.paths.resize(len, OliaPathState::default());
        }
    }
}

impl StatefulCc for Olia {
    fn name(&self) -> &'static str {
        "OLIA"
    }

    fn on_ack(
        &mut self,
        r: usize,
        subs: &[SubflowSnapshot],
        _now: f64,
        in_slow_start: bool,
    ) -> AckAction {
        self.ensure(subs.len());
        self.paths[r].l2 += 1.0;
        if in_slow_start {
            return AckAction::grow(1.0);
        }
        let paths = &self.paths;
        AckAction::grow(olia_increase(r, subs, |p| paths[p].inter_loss()))
    }

    fn window_after_loss(&mut self, r: usize, subs: &[SubflowSnapshot], _now: f64) -> f64 {
        self.ensure(subs.len());
        self.paths[r].l1 = self.paths[r].l2;
        self.paths[r].l2 = 0.0;
        subs[r].cwnd / 2.0
    }

    fn digest_state(&self, h: &mut DigestWriter) {
        self.det_digest(h);
    }
}

/// OLIA's pure fluid twin: the same increase rule with the inter-loss
/// distances pinned to fixed per-path loss rates (`ℓ_p = 1/p_p`), which is
/// their expectation in steady state. This is what makes OLIA
/// oracle-checkable by [`crate::fluid::equilibrium`] even though the
/// packet-level controller is stateful.
#[derive(Debug, Clone)]
pub struct OliaFluid {
    inter_loss: Vec<f64>,
}

crate::impl_det_digest!(OliaFluid { inter_loss });

impl OliaFluid {
    /// Build from per-path loss rates (each in `(0, 1]`).
    ///
    /// # Panics
    /// Panics if any loss rate is not in `(0, 1]`.
    pub fn from_loss_rates(losses: &[f64]) -> Self {
        let inter_loss = losses
            .iter()
            .map(|&p| {
                assert!(p > 0.0 && p <= 1.0, "loss rate must be in (0,1], got {p}");
                1.0 / p
            })
            .collect();
        Self { inter_loss }
    }

    fn l(&self, p: usize) -> f64 {
        self.inter_loss.get(p).copied().unwrap_or(1.0)
    }
}

impl MultipathCc for OliaFluid {
    fn name(&self) -> &'static str {
        "OLIA"
    }

    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        olia_increase(r, subs, |p| self.l(p))
    }

    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::equilibrium;

    /// Two identical paths: B = M = both paths, so every ε is zero and the
    /// equilibrium total must equal one TCP's √(2/p) window (Peng et al.
    /// table 1: OLIA is TCP-fair at a shared bottleneck).
    #[test]
    fn two_equal_paths_aggregate_to_one_tcp() {
        let p = 0.01;
        let cc = OliaFluid::from_loss_rates(&[p, p]);
        let w = equilibrium(&cc, &[p, p], &[0.1, 0.1]);
        let total: f64 = w.iter().sum();
        let tcp = (2.0_f64 / p).sqrt();
        assert!(
            (total - tcp).abs() / tcp < 0.05,
            "total {total} vs single-TCP {tcp}"
        );
        assert!((w[0] - w[1]).abs() / w[0] < 0.05, "equal paths split evenly: {w:?}");
    }

    /// The ε terms move window *toward* the better path: with equal RTTs
    /// but unequal loss, the low-loss path must end up with the larger
    /// window.
    #[test]
    fn epsilon_steers_toward_the_less_congested_path() {
        let losses = [0.04, 0.01];
        let cc = OliaFluid::from_loss_rates(&losses);
        let w = equilibrium(&cc, &losses, &[0.05, 0.05]);
        assert!(w[1] > 2.0 * w[0], "low-loss path dominates: {w:?}");
    }

    /// Stateful counter bookkeeping: ACKs advance `l2`, a loss rotates it
    /// into `l1`, and the estimate is the max of the two.
    #[test]
    fn inter_loss_counters_rotate_on_loss() {
        let mut cc = Olia::new();
        let subs = [SubflowSnapshot::new(10.0, 0.1), SubflowSnapshot::new(10.0, 0.1)];
        for _ in 0..5 {
            cc.on_ack(0, &subs, 0.0, true);
        }
        assert_eq!(cc.paths[0].l2, 5.0);
        assert_eq!(cc.window_after_loss(0, &subs, 1.0), 5.0);
        assert_eq!(cc.paths[0], OliaPathState { l1: 5.0, l2: 0.0 });
        assert_eq!(cc.paths[0].inter_loss(), 5.0);
        // The untouched path floors its estimate at one packet.
        assert_eq!(cc.paths[1].inter_loss(), 1.0);
    }

    /// In congestion avoidance with converged counters, the stateful
    /// controller's increase equals the fluid twin's bit for bit — the
    /// oracle checks the packet sim against exactly this rule.
    #[test]
    fn stateful_increase_matches_fluid_twin_with_pinned_counters() {
        let p = [0.02, 0.005];
        let mut cc = Olia::new();
        let subs = [SubflowSnapshot::new(8.0, 0.02), SubflowSnapshot::new(14.0, 0.1)];
        // Pin the counters to the fluid twin's 1/p expectation.
        cc.ensure(2);
        cc.paths[0] = OliaPathState { l1: 1.0 / p[0], l2: 0.0 };
        cc.paths[1] = OliaPathState { l1: 1.0 / p[1], l2: 0.0 };
        let fluid = OliaFluid::from_loss_rates(&p);
        for r in 0..2 {
            // The on_ack advances l2 by one before computing; compensate by
            // re-pinning per call.
            cc.paths[r].l2 = 0.0;
            let got = cc.on_ack(r, &subs, 0.0, false).grow;
            let want = fluid.increase_per_ack(r, &subs);
            assert_eq!(got.to_bits(), want.to_bits(), "path {r}: {got} vs {want}");
        }
    }

    #[test]
    fn single_path_olia_is_near_regular_tcp() {
        // One path: base term = (w/rtt²)/(w/rtt)² = 1/w, ε = 0.
        let cc = OliaFluid::from_loss_rates(&[0.01]);
        let subs = [SubflowSnapshot::new(10.0, 0.1)];
        assert!((cc.increase_per_ack(0, &subs) - 0.1).abs() < 1e-12);
        assert!((cc.window_after_loss(0, &subs) - 5.0).abs() < 1e-12);
    }
}
