//! A fixed-point fluid solver for small networks of capacitated links.
//!
//! In §2.2–§2.3 the paper predicts outcomes in scenarios (Fig. 2, Fig. 3)
//! where the per-path loss rates are not inputs but *emerge* from the
//! competition of the flows over shared links. This module solves those
//! scenarios: each link adjusts its loss rate until offered load matches
//! capacity (or the loss rate falls to zero on underloaded links), while
//! each flow's subflow windows sit at the equilibrium of its
//! congestion-control algorithm under the current loss rates.

use crate::algorithm::AlgorithmKind;
use crate::fluid::balance::{equilibrium_from, EquilibriumOptions};

/// A capacitated link in the fluid model.
#[derive(Debug, Clone, Copy)]
pub struct FluidLink {
    /// Capacity in packets per second.
    pub capacity: f64,
}

/// One subflow of a fluid flow: the links it traverses, and its RTT.
#[derive(Debug, Clone)]
pub struct FluidSubflow {
    /// Indices into the solver's link table.
    pub links: Vec<usize>,
    /// Round-trip time in seconds.
    pub rtt: f64,
}

/// A flow: a congestion-control algorithm plus its available paths.
#[derive(Debug, Clone)]
pub struct FluidFlow {
    /// Which algorithm the flow runs.
    pub algorithm: AlgorithmKind,
    /// The flow's subflows.
    pub subflows: Vec<FluidSubflow>,
}

/// The solved equilibrium of a [`FluidNetwork`].
#[derive(Debug, Clone)]
pub struct NetworkSolution {
    /// Loss rate of each link.
    pub link_loss: Vec<f64>,
    /// Offered load on each link, pkt/s.
    pub link_load: Vec<f64>,
    /// Per-flow, per-subflow rates in pkt/s.
    pub subflow_rates: Vec<Vec<f64>>,
}

impl NetworkSolution {
    /// Total rate of flow `f` across its subflows, pkt/s.
    pub fn flow_rate(&self, f: usize) -> f64 {
        self.subflow_rates[f].iter().sum()
    }
}

/// A small network of links and competing multipath flows.
#[derive(Debug, Clone, Default)]
pub struct FluidNetwork {
    links: Vec<FluidLink>,
    flows: Vec<FluidFlow>,
}

impl FluidNetwork {
    /// An empty network.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a link with `capacity` pkt/s; returns its index.
    pub fn add_link(&mut self, capacity: f64) -> usize {
        assert!(capacity > 0.0, "capacity must be positive");
        self.links.push(FluidLink { capacity });
        self.links.len() - 1
    }

    /// Add a flow; returns its index. Every subflow must reference valid
    /// links and have a positive RTT.
    pub fn add_flow(&mut self, algorithm: AlgorithmKind, subflows: Vec<FluidSubflow>) -> usize {
        assert!(!subflows.is_empty(), "flow needs at least one subflow");
        for sf in &subflows {
            assert!(!sf.links.is_empty(), "subflow must traverse at least one link");
            assert!(sf.rtt > 0.0, "subflow RTT must be positive");
            for &l in &sf.links {
                assert!(l < self.links.len(), "subflow references unknown link {l}");
            }
        }
        self.flows.push(FluidFlow { algorithm, subflows });
        self.flows.len() - 1
    }

    /// Solve for the network equilibrium by damped fixed-point iteration.
    ///
    /// Each round: compute every flow's equilibrium windows under the
    /// current path loss rates (path loss ≈ sum of link losses, the small-p
    /// approximation the paper uses), then nudge each link's loss rate up if
    /// overloaded and down if underloaded. Loss rates are floored at a tiny
    /// positive value so windows stay finite; a link pinned at the floor
    /// while underloaded is reported with its floor loss.
    pub fn solve(&self) -> NetworkSolution {
        const ROUNDS: usize = 1_500;
        const GAIN: f64 = 0.08;
        const P_FLOOR: f64 = 1e-7;
        const P_CEIL: f64 = 0.5;

        let nl = self.links.len();
        let mut p = vec![1e-3_f64; nl];
        let mut load = vec![0.0_f64; nl];
        let mut rates: Vec<Vec<f64>> =
            self.flows.iter().map(|f| vec![0.0; f.subflows.len()]).collect();
        // Damped rate estimates to stabilize the iteration.
        let mut smoothed: Vec<Vec<f64>> = rates.clone();
        // Warm-start state: each flow's last equilibrium windows.
        let mut warm: Vec<Vec<f64>> =
            self.flows.iter().map(|f| vec![10.0; f.subflows.len()]).collect();
        let ccs: Vec<_> =
            self.flows.iter().map(|f| f.algorithm.build(f.subflows.len())).collect();

        let opts = EquilibriumOptions {
            window_floor: 1e-6,
            tolerance: 1e-7,
            max_steps: 50_000,
        };

        for round in 0..ROUNDS {
            // 1. Flow response to current loss rates.
            for (fi, flow) in self.flows.iter().enumerate() {
                let cc = &ccs[fi];
                let path_loss: Vec<f64> = flow
                    .subflows
                    .iter()
                    .map(|sf| sf.links.iter().map(|&l| p[l]).sum::<f64>().clamp(P_FLOOR, P_CEIL))
                    .collect();
                let path_rtt: Vec<f64> = flow.subflows.iter().map(|sf| sf.rtt).collect();
                // Warm start from last round's solution, floored at one
                // packet so a previously-abandoned path can re-grow when
                // the loss landscape shifts (the ODE's drift scales with w).
                let init: Vec<f64> = warm[fi].iter().map(|&w| w.max(1.0)).collect();
                let w = equilibrium_from(cc.as_ref(), &path_loss, &path_rtt, &init, opts);
                warm[fi] = w.clone();
                for (si, (&wr, &t)) in w.iter().zip(&path_rtt).enumerate() {
                    let fresh = wr / t;
                    // Exponential damping of the subflow rate estimate.
                    smoothed[fi][si] = if round == 0 {
                        fresh
                    } else {
                        0.7 * smoothed[fi][si] + 0.3 * fresh
                    };
                    rates[fi][si] = smoothed[fi][si];
                }
            }
            // 2. Link loss response to offered load.
            load[..nl].fill(0.0);
            for (fi, flow) in self.flows.iter().enumerate() {
                for (si, sf) in flow.subflows.iter().enumerate() {
                    for &l in &sf.links {
                        load[l] += rates[fi][si];
                    }
                }
            }
            for l in 0..nl {
                let overload = (load[l] - self.links[l].capacity) / self.links[l].capacity;
                // Multiplicative update keeps p positive and adapts scale.
                let factor = (GAIN * overload).exp();
                p[l] = (p[l] * factor).clamp(P_FLOOR, P_CEIL);
            }
        }

        NetworkSolution { link_loss: p, link_load: load, subflow_rates: rates }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::fairness::jains_index;

    /// Fig. 2: three 12 Mb/s links; flow 1 has a one-hop path over link 0
    /// and a two-hop path over links 1+2; flow 2 has a one-hop path over
    /// link 1 and a two-hop path over links 2+0 — the classic triangle.
    /// COUPLED should put (almost) everything on the one-hop paths: each
    /// flow ≈ 12 Mb/s-equivalent; EWTCP splits and gets ≈ 8.5.
    ///
    /// We work in pkt/s with 12 Mb/s ≈ 1000 pkt/s for convenience.
    fn fig2_network(alg: AlgorithmKind) -> FluidNetwork {
        let mut net = FluidNetwork::new();
        let l0 = net.add_link(1000.0);
        let l1 = net.add_link(1000.0);
        let l2 = net.add_link(1000.0);
        let rtt = 0.1;
        // Paper Fig.2 has three flows in a ring: each flow has a one-hop
        // path and a two-hop path over the other two links.
        net.add_flow(
            alg,
            vec![
                FluidSubflow { links: vec![l0], rtt },
                FluidSubflow { links: vec![l1, l2], rtt },
            ],
        );
        net.add_flow(
            alg,
            vec![
                FluidSubflow { links: vec![l1], rtt },
                FluidSubflow { links: vec![l2, l0], rtt },
            ],
        );
        net.add_flow(
            alg,
            vec![
                FluidSubflow { links: vec![l2], rtt },
                FluidSubflow { links: vec![l0, l1], rtt },
            ],
        );
        net
    }

    #[test]
    fn fig2_coupled_uses_one_hop_paths() {
        let sol = fig2_network(AlgorithmKind::Coupled).solve();
        for f in 0..3 {
            let one_hop = sol.subflow_rates[f][0];
            let two_hop = sol.subflow_rates[f][1];
            assert!(
                two_hop < 0.05 * one_hop,
                "flow {f}: two-hop {two_hop} should be ≈0 vs one-hop {one_hop}"
            );
            // Should get close to the full 1000 pkt/s link.
            assert!(one_hop > 900.0, "flow {f} one-hop rate {one_hop}");
        }
    }

    #[test]
    fn fig2_ewtcp_wastes_capacity() {
        let sol = fig2_network(AlgorithmKind::Ewtcp).solve();
        let total: f64 = (0..3).map(|f| sol.flow_rate(f)).sum();
        // Paper: EWTCP ≈ 8.5/12 of optimal per flow. Allow a loose band:
        // clearly less than 95% of the 3000 pkt/s optimum.
        assert!(total < 0.87 * 3000.0, "EWTCP total {total} should be inefficient");
        let sol_c = fig2_network(AlgorithmKind::Coupled).solve();
        let coupled: f64 = (0..3).map(|f| sol_c.flow_rate(f)).sum();
        assert!(total < coupled, "EWTCP should underperform COUPLED");
    }

    /// MPTCP sits between EWTCP and COUPLED in Fig. 2. Its fluid
    /// equilibrium is exactly 75% of optimal here: with equal RTTs the
    /// balance equations give ŵ_twohop = ŵ_onehop/2 (each link then carries
    /// ŵ_onehop + 2·ŵ_twohop = 2·ŵ_onehop), i.e. per-flow throughput
    /// (ŵ_onehop + ŵ_twohop)/RTT = 0.75·C — better than EWTCP (≈ 0.71·C),
    /// below COUPLED's optimum (1.0·C), as §2.4's probing compromise
    /// intends.
    #[test]
    fn fig2_mptcp_sits_between_ewtcp_and_coupled() {
        let total = |alg: AlgorithmKind| -> f64 {
            let sol = fig2_network(alg).solve();
            (0..3).map(|f| sol.flow_rate(f)).sum()
        };
        let mptcp = total(AlgorithmKind::Mptcp);
        let ewtcp = total(AlgorithmKind::Ewtcp);
        let coupled = total(AlgorithmKind::Coupled);
        assert!(
            (0.70..0.80).contains(&(mptcp / 3000.0)),
            "MPTCP should land at ≈75% of optimal, got {}",
            mptcp / 3000.0
        );
        assert!(ewtcp < mptcp, "EWTCP {ewtcp} below MPTCP {mptcp}");
        assert!(mptcp < coupled, "MPTCP {mptcp} below COUPLED {coupled}");
    }

    /// Fig. 3: COUPLED balances congestion — all links end with (nearly)
    /// equal loss rates and all flows with (nearly) equal total throughput.
    #[test]
    fn fig3_coupled_balances_congestion_and_throughput() {
        // Link capacities from Fig.3 left (Mb/s → pkt/s 1:1 scale):
        // flow A uses links 0,1; B uses 1,2; C uses 2,0 — a ring where
        // capacities differ.
        let mut net = FluidNetwork::new();
        let l = [
            net.add_link(500.0),  // 5 Mb/s
            net.add_link(1200.0), // 12 Mb/s
            net.add_link(1300.0), // 13 Mb/s (sum 30 → 10 each)
        ];
        let rtt = 0.1;
        for f in 0..3 {
            net.add_flow(
                AlgorithmKind::Coupled,
                vec![
                    FluidSubflow { links: vec![l[f]], rtt },
                    FluidSubflow { links: vec![l[(f + 1) % 3]], rtt },
                ],
            );
        }
        let sol = net.solve();
        let rates: Vec<f64> = (0..3).map(|f| sol.flow_rate(f)).collect();
        let jain = jains_index(&rates);
        assert!(jain > 0.99, "COUPLED should equalize throughputs, Jain={jain} rates={rates:?}");
        // Loss rates should be (nearly) equal across links.
        let max_p = sol.link_loss.iter().cloned().fold(f64::MIN, f64::max);
        let min_p = sol.link_loss.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max_p / min_p < 1.3, "losses should balance: {:?}", sol.link_loss);
    }

    #[test]
    fn underloaded_link_sees_floor_loss() {
        let mut net = FluidNetwork::new();
        let bottleneck = net.add_link(100.0);
        let fat = net.add_link(1_000_000.0);
        net.add_flow(
            AlgorithmKind::Mptcp,
            vec![FluidSubflow { links: vec![bottleneck, fat], rtt: 0.05 }],
        );
        let sol = net.solve();
        assert!(sol.link_loss[1] < 1e-6, "fat link loss {}", sol.link_loss[1]);
        assert!(
            (sol.link_load[0] - 100.0).abs() / 100.0 < 0.05,
            "bottleneck should be ~fully used: {}",
            sol.link_load[0]
        );
    }
}
