//! Generic equilibrium solver: integrate the fluid window dynamics of any
//! [`MultipathCc`] to their fixed point.

use crate::algorithm::MultipathCc;
use crate::snapshot::SubflowSnapshot;

/// Options for [`equilibrium_with`].
#[derive(Debug, Clone, Copy)]
pub struct EquilibriumOptions {
    /// Floor applied to every window during integration, in packets. The
    /// paper's implementation keeps windows ≥ 1 pkt for probing (§2.4); for
    /// analysis it treats the floor as 0 (footnote 5). Default is a tiny
    /// positive value so that COUPLED's abandoned paths show up as ≈ 0.
    pub window_floor: f64,
    /// Convergence tolerance on the relative drift `|ẇ_r|·RTT_r / w_r`.
    pub tolerance: f64,
    /// Safety cap on integration steps.
    pub max_steps: usize,
}

impl Default for EquilibriumOptions {
    fn default() -> Self {
        Self { window_floor: 1e-6, tolerance: 1e-8, max_steps: 400_000 }
    }
}

/// Find the equilibrium windows of `cc` under fixed per-path loss rates
/// `loss[r]` and round-trip times `rtt[r]`, with default options.
///
/// The fluid dynamics integrated are the continuous-time limit of the
/// paper's window rules: ACKs arrive on path `r` at rate `w_r/RTT_r`, each
/// adding `increase_per_ack`, and losses arrive at rate `(w_r/RTT_r)p_r`,
/// each subtracting `w_r − window_after_loss`:
///
/// ```text
/// ẇ_r = (w_r/RTT_r) [ inc_r(w) − p_r·(w_r − dec_r(w)) ]
/// ```
///
/// This is exactly the balance argument of paper eq. (2) under its own
/// small-`p` approximation `1 − p ≈ 1` (so a single path equilibrates at
/// exactly `√(2/p)`, the paper's `ŵ_TCP`), solved for an arbitrary
/// algorithm instead of by hand.
///
/// # Panics
/// Panics if the slices are empty, have different lengths, or contain
/// non-positive loss rates / RTTs.
pub fn equilibrium(cc: &dyn MultipathCc, loss: &[f64], rtt: &[f64]) -> Vec<f64> {
    equilibrium_with(cc, loss, rtt, EquilibriumOptions::default())
}

/// [`equilibrium`] with explicit options.
pub fn equilibrium_with(
    cc: &dyn MultipathCc,
    loss: &[f64],
    rtt: &[f64],
    opts: EquilibriumOptions,
) -> Vec<f64> {
    // Start from the single-path TCP windows: a reasonable interior point.
    let init: Vec<f64> = loss.iter().map(|&p| (2.0 / p).sqrt()).collect();
    equilibrium_from(cc, loss, rtt, &init, opts)
}

/// [`equilibrium_with`] starting from an explicit initial guess `init`
/// (packets per path). Warm-starting from a nearby solution makes iterated
/// solves — as in [`crate::fluid::network`]'s fixed point — much cheaper.
pub fn equilibrium_from(
    cc: &dyn MultipathCc,
    loss: &[f64],
    rtt: &[f64],
    init: &[f64],
    opts: EquilibriumOptions,
) -> Vec<f64> {
    assert!(!loss.is_empty(), "need at least one path");
    assert_eq!(loss.len(), rtt.len(), "loss and rtt lengths differ");
    assert_eq!(loss.len(), init.len(), "init length mismatch");
    for (&p, &t) in loss.iter().zip(rtt) {
        assert!(p > 0.0 && p <= 1.0, "loss rate must be in (0,1], got {p}");
        assert!(t > 0.0, "RTT must be positive, got {t}");
    }
    let n = loss.len();
    let mut subs: Vec<SubflowSnapshot> = init
        .iter()
        .zip(rtt)
        .map(|(&w, &t)| SubflowSnapshot::new(w.max(opts.window_floor), t))
        .collect();

    let mut drift = vec![0.0_f64; n];
    for _step in 0..opts.max_steps {
        let mut max_rel = 0.0_f64;
        for r in 0..n {
            let w = subs[r].cwnd;
            let inc = cc.increase_per_ack(r, &subs);
            let dec = w - cc.window_after_loss(r, &subs);
            // ẇ_r, in packets per second of fluid time (1 − p ≈ 1).
            let d = (w / rtt[r]) * (inc - loss[r] * dec);
            drift[r] = d;
            // Relative drift over one RTT.
            max_rel = max_rel.max((d * rtt[r] / w).abs());
        }
        if max_rel < opts.tolerance {
            break;
        }
        // Adaptive Euler step: never move any window more than 2% per step.
        let mut dt = f64::INFINITY;
        for r in 0..n {
            if drift[r].abs() > 0.0 {
                dt = dt.min(0.02 * subs[r].cwnd / drift[r].abs());
            }
        }
        if !dt.is_finite() {
            break;
        }
        for r in 0..n {
            subs[r].cwnd = (subs[r].cwnd + drift[r] * dt).max(opts.window_floor);
        }
    }
    subs.into_iter().map(|s| s.cwnd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::tcp_window;
    use crate::{Coupled, Ewtcp, Mptcp, SemiCoupled, UncoupledReno};

    const P: [f64; 2] = [0.01, 0.02];
    const RTT: [f64; 2] = [0.1, 0.1];

    #[test]
    fn uncoupled_equilibrium_is_per_path_tcp() {
        let w = equilibrium(&UncoupledReno::new(), &P, &RTT);
        assert!((w[0] - tcp_window(P[0])).abs() / w[0] < 1e-3);
        assert!((w[1] - tcp_window(P[1])).abs() / w[1] < 1e-3);
    }

    #[test]
    fn ewtcp_equilibrium_is_weighted_tcp() {
        let w = equilibrium(&Ewtcp::equal_split(2), &P, &RTT);
        assert!((w[0] - 0.5 * tcp_window(P[0])).abs() / w[0] < 1e-3);
        assert!((w[1] - 0.5 * tcp_window(P[1])).abs() / w[1] < 1e-3);
    }

    #[test]
    fn coupled_abandons_more_congested_path() {
        let w = equilibrium(&Coupled::new(), &P, &RTT);
        // All weight on path 0 (lower loss); total ≈ √(2/p_min).
        assert!(w[1] < 1e-3, "congested path window should collapse, got {}", w[1]);
        assert!((w[0] - tcp_window(P[0])).abs() / w[0] < 1e-2);
    }

    #[test]
    fn coupled_equal_losses_keeps_tcp_total() {
        let p = [0.01, 0.01];
        let w = equilibrium(&Coupled::new(), &p, &RTT);
        let total: f64 = w.iter().sum();
        assert!((total - tcp_window(0.01)).abs() / total < 1e-2);
    }

    #[test]
    fn semicoupled_matches_closed_form() {
        let p = [0.01, 0.01, 0.05];
        let rtt = [0.1, 0.1, 0.1];
        let w = equilibrium(&SemiCoupled::new(), &p, &rtt);
        let inv_sum: f64 = p.iter().map(|x| 1.0 / x).sum();
        for r in 0..3 {
            let expect = (2.0_f64).sqrt() * (1.0 / p[r]) / inv_sum.sqrt();
            assert!((w[r] - expect).abs() / expect < 1e-3, "path {r}: {} vs {expect}", w[r]);
        }
    }

    #[test]
    fn mptcp_single_path_is_regular_tcp() {
        let w = equilibrium(&Mptcp::new(), &[0.005], &[0.08]);
        assert!((w[0] - tcp_window(0.005)).abs() / w[0] < 1e-3);
    }

    /// With equal RTTs and equal loss, MPTCP's equilibrium total equals one
    /// TCP's window (fairness at a shared bottleneck, Fig. 1).
    #[test]
    fn mptcp_equal_paths_total_is_one_tcp() {
        let p = [0.01, 0.01];
        let w = equilibrium(&Mptcp::new(), &p, &RTT);
        let total: f64 = w.iter().sum();
        assert!(
            (total - tcp_window(0.01)).abs() / total < 2e-2,
            "total {total} vs tcp {}",
            tcp_window(0.01)
        );
    }

    /// MPTCP prefers the less congested path but, unlike COUPLED, keeps
    /// meaningful traffic on the other (§2.4 probing rationale).
    #[test]
    fn mptcp_biases_toward_less_congested_without_abandoning() {
        let w = equilibrium(&Mptcp::new(), &P, &RTT);
        assert!(w[0] > w[1], "less congested path should carry more");
        assert!(w[1] > 1.0, "more congested path should not collapse: {}", w[1]);
    }
}
