//! Fluid-model equilibrium analysis (§2 of the paper).
//!
//! The paper reasons about its algorithms with balance arguments: at
//! equilibrium the expected window increase from ACKs equals the expected
//! decrease from losses (eq. (2) and its variants). This module makes those
//! arguments executable:
//!
//! * [`tcp_window`] / [`tcp_rate`] — the `ŵ_TCP = √(2/p)` single-path
//!   throughput model used throughout the paper;
//! * [`equilibrium`] — a generic ODE/balance solver that finds the
//!   equilibrium windows of **any** [`MultipathCc`](crate::MultipathCc)
//!   under fixed per-path loss rates and RTTs;
//! * [`fairness`] — the two fairness requirements (3)–(4) of §2.5 and
//!   Jain's fairness index;
//! * [`network`] — a fixed-point solver for small networks of capacitated
//!   links, which reproduces the Fig. 2 / Fig. 3 / §2.3 worked examples
//!   where the loss rates are an *outcome* of the competing flows rather
//!   than an input.

mod balance;
pub mod fairness;
pub mod network;

pub use balance::{equilibrium, equilibrium_from, equilibrium_with, EquilibriumOptions};

/// Equilibrium window of a single-path TCP under loss rate `p`:
/// `ŵ_TCP = √(2/p)` packets (the paper's approximation of eq. (2) for one
/// path, valid for small `p`).
///
/// # Panics
/// Panics unless `0 < p ≤ 1`.
pub fn tcp_window(p: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "loss rate must be in (0, 1]");
    (2.0 / p).sqrt()
}

/// Equilibrium rate of a single-path TCP: `√(2/p)/RTT` packets per second
/// (§2.3: "take the throughput of single-path TCP to be √(2/p)/RTT pkt/s").
pub fn tcp_rate(p: f64, rtt: f64) -> f64 {
    assert!(rtt > 0.0, "RTT must be positive");
    tcp_window(p) / rtt
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §2.3's worked example: WiFi at RTT 10 ms / 4% loss gives ~707 pkt/s,
    /// 3G at RTT 100 ms / 1% loss gives ~141 pkt/s.
    #[test]
    fn paper_wifi_3g_single_path_rates() {
        let wifi = tcp_rate(0.04, 0.010);
        let threeg = tcp_rate(0.01, 0.100);
        assert!((wifi - 707.1).abs() < 1.0, "wifi {wifi}");
        assert!((threeg - 141.4).abs() < 1.0, "3g {threeg}");
    }

    /// §2's baseline scenario, as a worked example: two paths with equal
    /// 1% loss and equal 100 ms RTTs. The balance solver must land on the
    /// closed-form equilibria the paper derives for each §2 algorithm.
    #[test]
    fn section2_equal_rtt_two_path_equilibria() {
        let p = [0.01, 0.01];
        let rtt = [0.1, 0.1];
        let tcp = tcp_window(0.01); // √200 ≈ 14.14 pkts

        // Uncoupled Reno (§2.1 strawman): each subflow is a full TCP, so
        // the flow takes twice a single TCP's window.
        let w = equilibrium(&crate::UncoupledReno::new(), &p, &rtt);
        for &wr in &w {
            assert!((wr / tcp - 1.0).abs() < 0.01, "reno path ≈ one TCP: {w:?}");
        }

        // EWTCP at weight 1/2 (§2.1): each subflow is half a TCP, so the
        // flow in total takes exactly one TCP's window.
        let w = equilibrium(&crate::Ewtcp::equal_split(2), &p, &rtt);
        for &wr in &w {
            assert!((wr / (tcp / 2.0) - 1.0).abs() < 0.01, "ewtcp path ≈ ½ TCP: {w:?}");
        }

        // MPTCP / LIA (§2.5, eq. (1)): the coupled increase makes the
        // *total* equal one TCP's window, split equally on symmetric paths.
        let w = equilibrium(&crate::Mptcp::new(), &p, &rtt);
        let total: f64 = w.iter().sum();
        assert!((total / tcp - 1.0).abs() < 0.01, "LIA total ≈ one TCP: {w:?}");
        assert!((w[0] - w[1]).abs() < 0.05 * total, "symmetric split: {w:?}");
    }

    /// §2.2's RTT-mismatch scenario: equal 1% loss, but RTTs of 10 ms vs
    /// 100 ms. EWTCP's windows ignore RTT entirely, while the paper's
    /// final algorithm compensates — its total *throughput* matches what
    /// the best single path alone would achieve (design goal 2, §2.5).
    #[test]
    fn section22_rtt_mismatch_worked_example() {
        let p = [0.01, 0.01];
        let rtt = [0.010, 0.100];

        // EWTCP: per-path windows are a pure function of that path's loss,
        // so the RTT mismatch leaves them identical.
        let w = equilibrium(&crate::Ewtcp::equal_split(2), &p, &rtt);
        assert!(
            (w[0] - w[1]).abs() < 0.01 * w[0],
            "EWTCP windows must not depend on RTT: {w:?}"
        );

        // MPTCP / LIA: total throughput ≈ the best single path's
        // √(2/p)/RTT (here the 10 ms path: ≈ 1414 pkt/s).
        let w = equilibrium(&crate::Mptcp::new(), &p, &rtt);
        let rate: f64 = w.iter().zip(&rtt).map(|(&wr, &t)| wr / t).sum();
        let best = tcp_rate(0.01, 0.010);
        assert!(
            (rate / best - 1.0).abs() < 0.02,
            "LIA pools resources to the best path's rate: {rate:.1} vs {best:.1}"
        );
    }

    #[test]
    fn window_decreases_with_loss() {
        assert!(tcp_window(0.001) > tcp_window(0.01));
        assert!(tcp_window(0.01) > tcp_window(0.1));
    }

    #[test]
    #[should_panic]
    fn zero_loss_is_rejected() {
        let _ = tcp_window(0.0);
    }
}
