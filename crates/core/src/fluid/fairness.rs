//! The §2.5 fairness requirements and Jain's fairness index.
//!
//! The paper proposes two requirements for multipath congestion control:
//!
//! 1. **Incentive** (eq. 3): a multipath flow should get at least as much
//!    throughput as a single-path TCP on the best of its paths:
//!    `Σ_r ŵ_r/RTT_r ≥ max_r ŵ_TCP_r/RTT_r`.
//! 2. **Do no harm** (eq. 4): on *every* subset of paths it should take no
//!    more than one single-path TCP using the best path of that subset:
//!    `Σ_{r∈S} ŵ_r/RTT_r ≤ max_{r∈S} ŵ_TCP_r/RTT_r` for all `S ⊆ R`.
//!
//! The functions here evaluate the constraints for given equilibrium
//! windows, loss rates and RTTs, where `ŵ_TCP_r = √(2/p_r)`.

use crate::fluid::tcp_window;

/// Report from checking the §2.5 fairness constraints.
#[derive(Debug, Clone, PartialEq)]
pub struct FairnessReport {
    /// Aggregate multipath rate `Σ ŵ_r/RTT_r` (pkt/s).
    pub multipath_rate: f64,
    /// `max_r ŵ_TCP_r/RTT_r`: the best single-path TCP rate (pkt/s).
    pub best_single_path_rate: f64,
    /// Whether the incentive constraint (3) holds, up to `tol`.
    pub incentive_ok: bool,
    /// Whether constraint (4) holds for every subset, up to `tol`.
    pub no_harm_ok: bool,
    /// The subset (as indices) most in violation of (4), if any.
    pub worst_subset: Option<Vec<usize>>,
    /// Max relative violation of (4) over all subsets (0 if none).
    pub worst_violation: f64,
}

/// Check both fairness requirements for equilibrium windows `w`, path loss
/// rates `loss` and RTTs `rtt`, with relative tolerance `tol`.
///
/// Subset enumeration is exponential; intended for the small path counts of
/// the paper's scenarios (≤ ~16 paths).
///
/// # Panics
/// Panics on length mismatches, empty input, or invalid loss/RTT values.
pub fn check_fairness(w: &[f64], loss: &[f64], rtt: &[f64], tol: f64) -> FairnessReport {
    assert!(!w.is_empty(), "need at least one path");
    assert!(w.len() == loss.len() && w.len() == rtt.len(), "length mismatch");
    assert!(w.len() <= 20, "subset enumeration is exponential");
    let n = w.len();
    let tcp_rates: Vec<f64> =
        loss.iter().zip(rtt).map(|(&p, &t)| tcp_window(p) / t).collect();
    let rates: Vec<f64> = w.iter().zip(rtt).map(|(&wr, &t)| wr / t).collect();

    let multipath_rate: f64 = rates.iter().sum();
    let best_single_path_rate = tcp_rates.iter().cloned().fold(f64::MIN, f64::max);
    let incentive_ok = multipath_rate >= best_single_path_rate * (1.0 - tol);

    let mut worst_subset = None;
    let mut worst_violation = 0.0_f64;
    for mask in 1_u64..(1 << n) {
        let mut sum = 0.0;
        let mut best = f64::MIN;
        for r in 0..n {
            if mask & (1 << r) != 0 {
                sum += rates[r];
                best = best.max(tcp_rates[r]);
            }
        }
        let violation = (sum - best) / best;
        if violation > worst_violation {
            worst_violation = violation;
            worst_subset =
                Some((0..n).filter(|r| mask & (1 << r) != 0).collect::<Vec<_>>());
        }
    }
    let no_harm_ok = worst_violation <= tol;
    if no_harm_ok {
        worst_subset = None;
        worst_violation = 0.0;
    }
    FairnessReport {
        multipath_rate,
        best_single_path_rate,
        incentive_ok,
        no_harm_ok,
        worst_subset,
        worst_violation,
    }
}

/// Jain's fairness index of a set of rates:
/// `(Σx)² / (n·Σx²)` — 1.0 means perfectly equal shares. Used by §3's torus
/// experiment ("Jain's fairness index is 0.99 for COUPLED, 0.986 for MPTCP
/// and 0.92 for EWTCP").
///
/// Returns 1.0 for an empty slice (vacuously fair).
pub fn jains_index(rates: &[f64]) -> f64 {
    if rates.is_empty() {
        return 1.0;
    }
    let sum: f64 = rates.iter().sum();
    let sum_sq: f64 = rates.iter().map(|x| x * x).sum();
    // lint:allow(float-ord, reason = "exact zero-guard: all-zero rates are vacuously fair; comparison feeds no ordering or window arithmetic")
    if sum_sq == 0.0 {
        return 1.0;
    }
    sum * sum / (rates.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fluid::{equilibrium, tcp_window};
    use crate::{Coupled, Ewtcp, Mptcp, UncoupledReno};

    // §2.3's WiFi / 3G scenario: the canonical RTT-mismatch test.
    const LOSS: [f64; 2] = [0.04, 0.01];
    const RTT: [f64; 2] = [0.010, 0.100];

    #[test]
    fn mptcp_satisfies_both_goals_under_rtt_mismatch() {
        let w = equilibrium(&Mptcp::new(), &LOSS, &RTT);
        let rep = check_fairness(&w, &LOSS, &RTT, 0.05);
        assert!(rep.incentive_ok, "incentive violated: {rep:?}");
        assert!(rep.no_harm_ok, "no-harm violated: {rep:?}");
    }

    #[test]
    fn uncoupled_violates_no_harm() {
        // Two TCPs take twice one TCP's share on a shared bottleneck.
        let p = [0.01, 0.01];
        let rtt = [0.1, 0.1];
        let w = equilibrium(&UncoupledReno::new(), &p, &rtt);
        let rep = check_fairness(&w, &p, &rtt, 0.05);
        assert!(!rep.no_harm_ok, "uncoupled should violate (4): {rep:?}");
    }

    #[test]
    fn ewtcp_violates_incentive_under_rtt_mismatch() {
        // §2.3: EWTCP gets (707+141)/2 = 424 pkt/s < 707 pkt/s.
        let w = equilibrium(&Ewtcp::equal_split(2), &LOSS, &RTT);
        let rep = check_fairness(&w, &LOSS, &RTT, 0.05);
        assert!(!rep.incentive_ok, "EWTCP should violate (3): {rep:?}");
    }

    #[test]
    fn coupled_violates_incentive_under_rtt_mismatch() {
        // §2.3: COUPLED collapses to the 3G path, 141 pkt/s.
        let w = equilibrium(&Coupled::new(), &LOSS, &RTT);
        let rep = check_fairness(&w, &LOSS, &RTT, 0.05);
        assert!(!rep.incentive_ok, "COUPLED should violate (3): {rep:?}");
    }

    #[test]
    fn violation_report_names_the_worst_subset() {
        // Hand-crafted gross violation: both paths at full TCP window, so
        // the pair takes 2× one TCP at a (potential) shared bottleneck.
        let p = [0.01, 0.01];
        let rtt = [0.1, 0.1];
        let w = [tcp_window(0.01), tcp_window(0.01)];
        let rep = check_fairness(&w, &p, &rtt, 0.05);
        assert!(!rep.no_harm_ok);
        assert_eq!(rep.worst_subset, Some(vec![0, 1]), "the pair is the violator");
        assert!(rep.worst_violation > 0.9, "≈2× is a ~100% violation");
        // A compliant point reports no subset.
        let w = [tcp_window(0.01) / 2.0, tcp_window(0.01) / 2.0];
        let rep = check_fairness(&w, &p, &rtt, 0.05);
        assert!(rep.no_harm_ok);
        assert_eq!(rep.worst_subset, None);
        assert_eq!(rep.worst_violation, 0.0);
    }

    #[test]
    fn single_path_tcp_point_is_trivially_fair() {
        let rep = check_fairness(&[tcp_window(0.02)], &[0.02], &[0.05], 0.01);
        assert!(rep.incentive_ok && rep.no_harm_ok);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        let _ = check_fairness(&[1.0, 2.0], &[0.01], &[0.1, 0.1], 0.05);
    }

    #[test]
    fn jains_index_extremes() {
        assert!((jains_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        // One flow hogging everything among n flows gives 1/n.
        assert!((jains_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        assert_eq!(jains_index(&[]), 1.0);
        assert_eq!(jains_index(&[0.0, 0.0]), 1.0);
    }
}
