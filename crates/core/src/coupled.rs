//! COUPLED — fully coupled windows that concentrate on the least-congested
//! path (§2.2).

use crate::algorithm::MultipathCc;
use crate::snapshot::{total_window, SubflowSnapshot};

/// The COUPLED algorithm (§2.2), adapted from the fluid models of Kelly &
/// Voice and Han et al.: both the increase and the decrease are functions of
/// the **total** window `w_total = Σ_s w_s`.
///
/// * Each ACK on path `r`: `w_r += 1/w_total`.
/// * Each loss on path `r`: `w_r -= w_total/2` (bounded below).
///
/// At equilibrium `w_total ≈ √(2/p)` regardless of the number of paths, so
/// COUPLED is automatically fair at shared bottlenecks, and because paths
/// with higher loss rates see more decreases, all traffic migrates to the
/// least-congested path (`ŵ_r = 0` whenever `p_r > p_min`).
///
/// Two deliberate weaknesses, reproduced faithfully because the paper's
/// experiments depend on them:
/// * **RTT mismatch** (§2.3): throughput collapses to that of the
///   least-congested path even when that path has a hopeless RTT;
/// * **"trapping"** (§2.4): with only the 1-packet probing floor, COUPLED
///   discovers load changes on an abandoned path very slowly (Fig. 5/9).
#[derive(Debug, Clone, Copy, Default)]
pub struct Coupled;

impl Coupled {
    /// Create the COUPLED algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl MultipathCc for Coupled {
    fn name(&self) -> &'static str {
        "COUPLED"
    }

    /// "For each ACK on path r, increase window w_r by 1/w_total."
    fn increase_per_ack(&self, _r: usize, subs: &[SubflowSnapshot]) -> f64 {
        1.0 / total_window(subs)
    }

    /// "For each loss on path r, decrease window w_r by w_total/2."
    ///
    /// The result can be negative for a small subflow; callers clamp to the
    /// probing floor ("In our experiments we bound it to be ≥ 1 pkt", §2.2
    /// footnote 5).
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd - total_window(subs) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_coupled_is_regular_tcp() {
        let cc = Coupled::new();
        let subs = [SubflowSnapshot::new(12.0, 0.05)];
        assert!((cc.increase_per_ack(0, &subs) - 1.0 / 12.0).abs() < 1e-12);
        // w - w_total/2 = w/2 with one path.
        assert!((cc.window_after_loss(0, &subs) - 6.0).abs() < 1e-12);
    }

    #[test]
    fn increase_shared_across_paths() {
        let cc = Coupled::new();
        let subs = [SubflowSnapshot::new(10.0, 0.05), SubflowSnapshot::new(30.0, 0.05)];
        // Same increase on both paths: 1/w_total = 1/40.
        assert!((cc.increase_per_ack(0, &subs) - 0.025).abs() < 1e-12);
        assert!((cc.increase_per_ack(1, &subs) - 0.025).abs() < 1e-12);
    }

    #[test]
    fn loss_on_small_subflow_can_push_below_zero() {
        // The decrease is w_total/2 even on a small subflow; the caller's
        // probing floor is what keeps the window alive.
        let cc = Coupled::new();
        let subs = [SubflowSnapshot::new(2.0, 0.05), SubflowSnapshot::new(38.0, 0.05)];
        assert!(cc.window_after_loss(0, &subs) < 0.0);
    }

    /// Balance check of paper eq. (2): at ŵ_total = √(2/p) with equal loss
    /// on all paths, increase and decrease rates cancel.
    #[test]
    fn equilibrium_total_window_is_sqrt_two_over_p() {
        let p = 0.004_f64;
        let w_total = (2.0 / p).sqrt();
        let subs = [
            SubflowSnapshot::new(w_total / 2.0, 0.1),
            SubflowSnapshot::new(w_total / 2.0, 0.1),
        ];
        let cc = Coupled::new();
        // Per-ACK increase times (1-p)≈1 must equal p × (w_total/2) loss-rate
        // × decrease... in window terms per packet sent:
        let inc = cc.increase_per_ack(0, &subs);
        let dec = p * (w_total / 2.0);
        assert!((inc - dec).abs() / dec < 1e-9);
    }
}
