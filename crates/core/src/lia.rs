//! MPTCP — the paper's final algorithm (§2, eq. (1)), with the appendix's
//! linear-time computation of the increase parameter.

use crate::algorithm::MultipathCc;
use crate::snapshot::SubflowSnapshot;

/// The MPTCP coupled congestion-control algorithm ("LIA"), as specified at
/// the start of §2 of the paper:
///
/// * **Each ACK on subflow `r`**: for each subset `S ⊆ R` containing `r`,
///   compute
///
///   ```text
///         max_{s∈S} w_s / RTT_s²
///       ──────────────────────────
///        ( Σ_{s∈S} w_s / RTT_s )²
///   ```
///
///   and increase `w_r` by the **minimum** over all such `S`.
///
/// * **Each loss on subflow `r`**: decrease `w_r` by `w_r/2`.
///
/// Properties the paper proves / demonstrates, all of which are tested in
/// this crate:
///
/// * the singleton `S = {r}` term equals `1/w_r`, so the increase is never
///   more aggressive than regular TCP on any one path (the cap of §2.5);
/// * the equilibrium satisfies both fairness goals (3)–(4): the connection
///   gets at least the throughput a single-path TCP would get on its best
///   path, and takes no more than one TCP's worth on any set of paths;
/// * the minimum can be found with a linear search over an ordering of the
///   subflows (appendix), not a combinatorial one — see
///   [`lia_increase_linear`] vs [`lia_increase_exhaustive`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Mptcp;

impl Mptcp {
    /// Create the MPTCP algorithm.
    pub fn new() -> Self {
        Self
    }
}

impl MultipathCc for Mptcp {
    fn name(&self) -> &'static str {
        "MPTCP"
    }

    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        lia_increase_linear(r, subs)
    }

    /// "Each loss on subflow r, decrease the window w_r by w_r/2."
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

/// A snapshot eq. (1) can evaluate: positive finite window and RTT.
fn is_sane(s: &SubflowSnapshot) -> bool {
    s.cwnd.is_finite() && s.cwnd > 0.0 && s.rtt.is_finite() && s.rtt > 0.0
}

/// The subset term of eq. (1):
/// `max_{s∈S} (w_s/RTT_s²) / (Σ_{s∈S} w_s/RTT_s)²`.
fn subset_term(subset: &[usize], subs: &[SubflowSnapshot]) -> f64 {
    debug_assert!(!subset.is_empty());
    let mut max_num = 0.0_f64;
    let mut sum = 0.0_f64;
    for &s in subset {
        let w = subs[s].cwnd;
        let rtt = subs[s].rtt;
        max_num = max_num.max(w / (rtt * rtt));
        sum += w / rtt;
    }
    max_num / (sum * sum)
}

/// Reference implementation of eq. (1): enumerate **every** subset
/// `S ⊆ R` with `r ∈ S` and take the minimum term. Exponential in the number
/// of subflows — kept as the oracle that [`lia_increase_linear`] is
/// property-tested against, and usable directly for small path counts.
///
/// # Panics
/// Panics if `subs` is empty or `r` is out of range.
pub fn lia_increase_exhaustive(r: usize, subs: &[SubflowSnapshot]) -> f64 {
    assert!(r < subs.len(), "subflow index out of range");
    let n = subs.len();
    assert!(n <= 24, "exhaustive search is exponential; use the linear form");
    let mut best = f64::INFINITY;
    let mut members: Vec<usize> = Vec::with_capacity(n);
    // Iterate bitmasks of the other subflows; r is always included.
    let others: Vec<usize> = (0..n).filter(|&i| i != r).collect();
    for mask in 0..(1_u64 << others.len()) {
        members.clear();
        members.push(r);
        for (bit, &o) in others.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                members.push(o);
            }
        }
        best = best.min(subset_term(&members, subs));
    }
    best
}

/// The appendix's linear-time computation of the eq. (1) increase.
///
/// Order the subflows so that `√w_1/RTT_1 ≤ … ≤ √w_n/RTT_n` (equivalently by
/// `w/RTT²`, since both orderings square to the same comparison). For a set
/// whose maximal element (in that order) is `u`, the term's numerator is
/// fixed at `w_u/RTT_u²`, and the denominator is maximized by including
/// *every* subflow `t ≤ u`; the set must contain `r`, so `u` ranges over the
/// positions at or after `r`:
///
/// ```text
/// min_{u ≥ pos(r)}  (w_u/RTT_u²) / ( Σ_{t ≤ u} w_t/RTT_t )²
/// ```
///
/// Cost is `O(n log n)` for the sort plus `O(n)` for the scan.
///
/// # Panics
/// Panics if `subs` is empty or `r` is out of range.
pub fn lia_increase_linear(r: usize, subs: &[SubflowSnapshot]) -> f64 {
    assert!(r < subs.len(), "subflow index out of range");
    let n = subs.len();
    // Degenerate snapshots (rtt == 0 before the first sample, NaN/∞ windows
    // mid-handover) would make the sort keys incomparable and the prefix
    // sums meaningless. Fall back to the singleton bound 1/w_r, the term
    // eq. (1) yields for S = {r}: it never over-increases relative to the
    // true minimum, and it only depends on our own window.
    if subs.iter().any(|s| !is_sane(s)) {
        let w = subs[r].cwnd;
        return if w.is_finite() && w > 0.0 { 1.0 / w } else { 0.0 };
    }
    if n == 1 {
        return 1.0 / subs[0].cwnd;
    }
    // Sort indices by w/RTT² ascending (same order as √w/RTT). This runs
    // on every ACK of a live connection, so small path counts (the
    // overwhelmingly common case) use a stack-allocated index array.
    const STACK: usize = 16;
    let mut stack_buf = [0usize; STACK];
    let mut heap_buf;
    let order: &mut [usize] = if n <= STACK {
        for (i, slot) in stack_buf[..n].iter_mut().enumerate() {
            *slot = i;
        }
        &mut stack_buf[..n]
    } else {
        heap_buf = (0..n).collect::<Vec<usize>>();
        &mut heap_buf
    };
    order.sort_unstable_by(|&a, &b| {
        let ka = subs[a].cwnd / (subs[a].rtt * subs[a].rtt);
        let kb = subs[b].cwnd / (subs[b].rtt * subs[b].rtt);
        ka.total_cmp(&kb)
    });
    let pos_r = order.iter().position(|&i| i == r).expect("r is in the order");

    let mut best = f64::INFINITY;
    let mut prefix_sum = 0.0_f64; // Σ_{t ≤ u} w_t/RTT_t as u advances.
    for (pos, &u) in order.iter().enumerate() {
        prefix_sum += subs[u].cwnd / subs[u].rtt;
        if pos >= pos_r {
            let num = subs[u].cwnd / (subs[u].rtt * subs[u].rtt);
            best = best.min(num / (prefix_sum * prefix_sum));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(f64, f64)]) -> Vec<SubflowSnapshot> {
        pairs.iter().map(|&(w, rtt)| SubflowSnapshot::new(w, rtt)).collect()
    }

    #[test]
    fn single_subflow_reduces_to_regular_tcp() {
        let subs = snap(&[(10.0, 0.1)]);
        assert!((lia_increase_linear(0, &subs) - 0.1).abs() < 1e-12);
        assert!((lia_increase_exhaustive(0, &subs) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn increase_capped_by_one_over_own_window() {
        // The singleton subset gives exactly 1/w_r, so the min can't exceed it.
        let subs = snap(&[(10.0, 0.01), (5.0, 0.2), (80.0, 0.05)]);
        for r in 0..subs.len() {
            let inc = lia_increase_linear(r, &subs);
            assert!(inc <= 1.0 / subs[r].cwnd + 1e-15);
        }
    }

    #[test]
    fn equal_rtts_reduce_to_semicoupled_like_total_window_term() {
        // With equal RTTs and equal windows the full set dominates:
        // term(S=R) = (w/RTT²) / (n·w/RTT)² = 1/(n²·w) < 1/w.
        let subs = snap(&[(10.0, 0.1), (10.0, 0.1)]);
        let inc = lia_increase_linear(0, &subs);
        assert!((inc - 1.0 / (4.0 * 10.0)).abs() < 1e-12);
    }

    #[test]
    fn linear_matches_exhaustive_on_fixed_cases() {
        let cases = [
            snap(&[(10.0, 0.01), (5.0, 0.2)]),
            snap(&[(1.0, 0.5), (100.0, 0.01), (20.0, 0.05)]),
            snap(&[(7.0, 0.08), (7.0, 0.08), (7.0, 0.08), (7.0, 0.08)]),
            snap(&[(3.0, 1.2), (44.0, 0.013), (2.0, 0.4), (18.0, 0.09), (9.0, 0.9)]),
        ];
        for subs in &cases {
            for r in 0..subs.len() {
                let lin = lia_increase_linear(r, subs);
                let exh = lia_increase_exhaustive(r, subs);
                assert!(
                    (lin - exh).abs() <= 1e-12 * exh.max(1e-30),
                    "mismatch at r={r}: linear {lin} vs exhaustive {exh}"
                );
            }
        }
    }

    #[test]
    fn loss_halves_own_window() {
        let cc = Mptcp::new();
        let subs = snap(&[(10.0, 0.01), (6.0, 0.2)]);
        assert!((cc.window_after_loss(1, &subs) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_rtt_snapshot_falls_back_to_singleton_bound() {
        // Before the first RTT sample a subflow can legitimately report
        // rtt == 0; the increase must not panic and must stay at the
        // singleton cap 1/w_r.
        let subs = snap(&[(10.0, 0.1), (4.0, 0.0)]);
        assert!((lia_increase_linear(0, &subs) - 0.1).abs() < 1e-12);
        assert!((lia_increase_linear(1, &subs) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn nan_window_snapshot_does_not_panic() {
        let subs = snap(&[(f64::NAN, 0.1), (4.0, 0.2)]);
        assert_eq!(lia_increase_linear(0, &subs), 0.0);
        assert!((lia_increase_linear(1, &subs) - 0.25).abs() < 1e-12);
        let subs = snap(&[(f64::INFINITY, 0.1), (4.0, 0.2)]);
        assert_eq!(lia_increase_linear(0, &subs), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_subflow_panics() {
        let subs = snap(&[(10.0, 0.01)]);
        let _ = lia_increase_linear(1, &subs);
    }

    /// §2.5's two-path algorithm wrote the increase as min(a/w_total, 1/w_r)
    /// with `a` from eq. (5) computed at equilibrium. Check that at an
    /// RTT-symmetric equilibrium point eq. (1) agrees with a/w_total where
    /// a = ŵ_total·(max_r ŵ_r/RTT²) / (Σ ŵ_r/RTT)².
    #[test]
    fn matches_closed_form_a_at_symmetric_point() {
        let subs = snap(&[(12.0, 0.1), (20.0, 0.1)]);
        let w_total = 32.0;
        let max_term = subs.iter().map(|s| s.cwnd / (s.rtt * s.rtt)).fold(0.0, f64::max);
        let sum: f64 = subs.iter().map(|s| s.cwnd / s.rtt).sum();
        let a = w_total * max_term / (sum * sum);
        let expected = (a / w_total).min(1.0 / subs[0].cwnd);
        let got = lia_increase_linear(0, &subs);
        assert!((got - expected).abs() < 1e-12);
    }
}
