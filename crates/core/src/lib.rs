//! # mptcp-cc — Multipath TCP coupled congestion control
//!
//! This crate implements the congestion-control algorithms from
//! *"Design, implementation and evaluation of congestion control for
//! multipath TCP"* (Wischik, Raiciu, Greenhalgh, Handley — NSDI 2011),
//! the paper that became the basis for RFC 6356 ("LIA").
//!
//! The algorithms are expressed as **pure window-update rules** behind the
//! [`MultipathCc`] trait, completely decoupled from any particular packet
//! transport. The same objects drive:
//!
//! * the packet-level discrete-event simulator (`mptcp-netsim`),
//! * the userspace protocol stack (`mptcp-proto`),
//! * and the fluid-model equilibrium solvers in [`fluid`], which reproduce
//!   every worked example from §2 of the paper.
//!
//! ## Algorithms
//!
//! | Type | Paper section | Per-ACK increase on subflow *r* | Per-loss decrease |
//! |---|---|---|---|
//! | [`UncoupledReno`] | §2 "REGULAR TCP" | `1/w_r` | `w_r/2` |
//! | [`Ewtcp`] | §2.1 | `b²/w_r` (weight `b`) | `w_r/2` |
//! | [`Coupled`] | §2.2 | `1/w_total` | `w_total/2` |
//! | [`SemiCoupled`] | §2.4 | `a/w_total` | `w_r/2` |
//! | [`Mptcp`] | §2 / §2.5 (eq. 1) | `min_{S∋r} max_{s∈S}(w_s/RTT_s²) / (Σ_{s∈S} w_s/RTT_s)²` | `w_r/2` |
//!
//! The MPTCP rule's minimum over subsets is computed with the **linear
//! search** proved correct in the paper's appendix; an exhaustive
//! exponential-time oracle is kept in the crate for property testing.
//!
//! ## Quick example
//!
//! ```
//! use mptcp_cc::{Mptcp, MultipathCc, SubflowSnapshot};
//!
//! let cc = Mptcp::new();
//! // Two subflows: a short fat path and a long thin one.
//! let subs = [
//!     SubflowSnapshot::new(10.0, 0.010),
//!     SubflowSnapshot::new(4.0, 0.100),
//! ];
//! let inc = cc.increase_per_ack(0, &subs);
//! // The increase is always capped by regular TCP's 1/w_r
//! // (the singleton set S = {r} is among the candidates).
//! assert!(inc <= 1.0 / subs[0].cwnd + 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod algorithm;
mod balia;
mod coupled;
mod cubic;
mod ewtcp;
mod lia;
mod olia;
mod reno;
mod rfc6356;
mod semicoupled;
mod snapshot;
mod wvegas;

pub mod digest;
pub mod fluid;
pub mod stateful;

pub use algorithm::{AlgorithmKind, MultipathCc};
pub use digest::{DetDigest, DigestWriter};
pub use stateful::{AckAction, CcDriver, PureAdapter, StatefulCc};

/// Consecutive RTO backoffs without any ACK progress after which a subflow
/// is treated as **potentially failed**: no new data is scheduled on it
/// (retransmission probes continue), and any stranded unacknowledged data
/// becomes eligible for reinjection on the remaining subflows. The first
/// ACK that shows progress clears the state ("fast revive").
///
/// Shared by the packet-level simulator (`mptcp-netsim`) and the userspace
/// stack (`mptcp-proto`) so both layers agree on when a path counts as
/// dead — the paper's §6 failure handling hinges on this threshold being
/// small enough that a WiFi blackout fails over within a couple of RTOs.
pub const POTENTIALLY_FAILED_RTO_BACKOFFS: u32 = 2;
pub use balia::Balia;
pub use coupled::Coupled;
pub use cubic::Cubic;
pub use ewtcp::Ewtcp;
pub use lia::{lia_increase_exhaustive, lia_increase_linear, Mptcp};
pub use olia::{Olia, OliaFluid};
pub use reno::UncoupledReno;
pub use rfc6356::Rfc6356;
pub use semicoupled::{semicoupled_equilibrium, SemiCoupled};
pub use snapshot::{active_count, total_window, SubflowSnapshot};
pub use wvegas::Wvegas;
