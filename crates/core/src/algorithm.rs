//! The [`MultipathCc`] trait and a serializable algorithm selector.

use crate::snapshot::SubflowSnapshot;
use crate::stateful::CcDriver;
use crate::{Balia, Coupled, Cubic, Ewtcp, Mptcp, Olia, OliaFluid, Rfc6356, SemiCoupled, UncoupledReno, Wvegas};

/// A multipath congestion-control rule: how much to open a subflow's window
/// on each ACK, and where to set it after a loss event.
///
/// Implementations are **pure**: they read the state of all subflows of the
/// connection and return the new value; they hold no per-connection mutable
/// state. This mirrors the paper's presentation, where every algorithm is a
/// pair of update rules, and lets the same object drive the fluid model, the
/// simulator, and the protocol stack.
///
/// Conventions:
/// * windows are in packets, RTTs in seconds ([`SubflowSnapshot`]);
/// * `r` indexes into `subs`;
/// * callers apply the probing floor [`MultipathCc::min_window`] after a
///   decrease (the paper bounds windows to ≥ 1 packet in its implementation,
///   §2.4, precisely so a flow keeps probing paths that might improve).
pub trait MultipathCc: Send + Sync {
    /// Short stable name, used in experiment output ("MPTCP", "EWTCP", …).
    fn name(&self) -> &'static str;

    /// Window increment (in packets) granted to subflow `r` for one ACK of
    /// one packet, given the current state of all subflows.
    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64;

    /// The window subflow `r` should drop to on a loss event (before the
    /// probing floor is applied).
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64;

    /// Probing floor: the minimum window a subflow is held at so that it
    /// keeps sampling its path's congestion (§2.4). One packet by default.
    fn min_window(&self) -> f64 {
        1.0
    }

    /// [`MultipathCc::window_after_loss`] with the probing floor applied —
    /// the value an actual sender sets its window to.
    ///
    /// The raw decrease rules can go below one packet or even negative
    /// (COUPLED subtracts `w_total/2` from any subflow, which the fluid
    /// model integrates verbatim to show path abandonment, footnote 5).
    /// A packet-level sender must never do that: a window under one MSS
    /// strands the subflow — it can neither send nor sample its path.
    /// Every simulator/protocol loss event goes through this method.
    fn clamped_window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let raw = self.window_after_loss(r, subs);
        let floor = self.min_window();
        if raw.is_finite() {
            raw.max(floor)
        } else {
            floor
        }
    }
}

/// A selector for the algorithms evaluated in the paper, used by the
/// experiment harness to sweep algorithms from one configuration.
// lint:exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Regular TCP on every subflow, fully uncoupled (§2.1's strawman).
    Uncoupled,
    /// Equally-weighted TCP with per-subflow throughput weight `1/n` (§2.1).
    Ewtcp,
    /// Fully coupled: all traffic moves to the least-congested path (§2.2).
    Coupled,
    /// Semi-coupled with linked increases but per-subflow decreases (§2.4).
    SemiCoupled,
    /// The paper's final algorithm, eq. (1) — RTT-compensated coupling (§2.5).
    Mptcp,
    /// The RFC 6356 restatement of the paper's algorithm (deployed LIA).
    Rfc6356,
    /// RFC 8312 CUBIC with hybrid slow start, uncoupled per subflow
    /// (stateful — the production single-path baseline).
    Cubic,
    /// OLIA, the opportunistic linked-increases successor (stateful:
    /// inter-loss counters).
    Olia,
    /// BALIA, the balanced linked-adaptation successor (pure).
    Balia,
    /// wVegas, delay-based weighted Vegas (stateful: base-RTT filters).
    Wvegas,
}

impl AlgorithmKind {
    /// Number of algorithm kinds. Kept in lockstep with the enum by
    /// [`AlgorithmKind::ordinal`]'s exhaustive match: adding a variant
    /// without growing this constant fails to compile at [`AlgorithmKind::all`]'s
    /// array type.
    pub const COUNT: usize = 10;

    /// The kind's position in [`AlgorithmKind::all`]. The match is
    /// deliberately exhaustive (no wildcard): a new variant forces an arm
    /// here, and the `all()` array type forces [`AlgorithmKind::COUNT`] to
    /// grow with it — the sweep lists can no longer silently drop a kind.
    pub const fn ordinal(self) -> usize {
        match self {
            AlgorithmKind::Uncoupled => 0,
            AlgorithmKind::Ewtcp => 1,
            AlgorithmKind::Coupled => 2,
            AlgorithmKind::SemiCoupled => 3,
            AlgorithmKind::Mptcp => 4,
            AlgorithmKind::Rfc6356 => 5,
            AlgorithmKind::Cubic => 6,
            AlgorithmKind::Olia => 7,
            AlgorithmKind::Balia => 8,
            AlgorithmKind::Wvegas => 9,
        }
    }

    /// Whether the packet-level controller needs per-connection mutable
    /// state (built by [`AlgorithmKind::build_cc`] only).
    pub const fn is_stateful(self) -> bool {
        matches!(self, AlgorithmKind::Cubic | AlgorithmKind::Olia | AlgorithmKind::Wvegas)
    }

    /// Instantiate the pure rule for a connection with `n_subflows` paths,
    /// or `None` for the stateful-only kinds.
    ///
    /// `n_subflows` is unused since EWTCP derives its `1/n` weight from the
    /// live snapshot slice; it is kept so call sites document the intended
    /// path count.
    pub fn try_build(self, n_subflows: usize) -> Option<Box<dyn MultipathCc>> {
        let _ = n_subflows;
        match self {
            AlgorithmKind::Uncoupled => Some(Box::new(UncoupledReno::new())),
            AlgorithmKind::Ewtcp => Some(Box::new(Ewtcp::live_equal_split())),
            AlgorithmKind::Coupled => Some(Box::new(Coupled::new())),
            AlgorithmKind::SemiCoupled => Some(Box::new(SemiCoupled::new())),
            AlgorithmKind::Mptcp => Some(Box::new(Mptcp::new())),
            AlgorithmKind::Rfc6356 => Some(Box::new(Rfc6356::new())),
            AlgorithmKind::Balia => Some(Box::new(Balia::new())),
            AlgorithmKind::Cubic | AlgorithmKind::Olia | AlgorithmKind::Wvegas => None,
        }
    }

    /// Instantiate the pure rule for a connection with `n_subflows` paths.
    ///
    /// # Panics
    /// Panics for the stateful-only kinds (CUBIC, OLIA, wVegas) — use
    /// [`AlgorithmKind::build_cc`] for a driver that covers every kind.
    pub fn build(self, n_subflows: usize) -> Box<dyn MultipathCc> {
        self.try_build(n_subflows).unwrap_or_else(|| {
            panic!(
                "{self:?} needs per-connection state; build it with AlgorithmKind::build_cc"
            )
        })
    }

    /// Instantiate the controller driver for a connection with
    /// `n_subflows` paths — the universal constructor covering both pure
    /// and stateful kinds.
    pub fn build_cc(self, n_subflows: usize) -> CcDriver {
        match self {
            AlgorithmKind::Cubic => CcDriver::Stateful(Box::new(Cubic::new())),
            AlgorithmKind::Olia => CcDriver::Stateful(Box::new(Olia::new())),
            AlgorithmKind::Wvegas => CcDriver::Stateful(Box::new(Wvegas::new())),
            AlgorithmKind::Uncoupled
            | AlgorithmKind::Ewtcp
            | AlgorithmKind::Coupled
            | AlgorithmKind::SemiCoupled
            | AlgorithmKind::Mptcp
            | AlgorithmKind::Rfc6356
            | AlgorithmKind::Balia => CcDriver::Pure(self.build(n_subflows)),
        }
    }

    /// The pure rule the fluid oracle should compare a packet-level run of
    /// this kind against, given the per-path loss rates the run measured.
    ///
    /// * Pure kinds ignore `losses` — the rule itself is the model.
    /// * OLIA's stateful inter-loss counters have the known steady-state
    ///   expectation `ℓ_p = 1/p_p`, so its model is [`OliaFluid`] pinned to
    ///   the measured losses.
    /// * CUBIC and wVegas return `None`: their dynamics (real-time epochs,
    ///   delay equilibria) are outside the loss-driven fluid solver.
    pub fn fluid_model(self, losses: &[f64]) -> Option<Box<dyn MultipathCc>> {
        match self {
            AlgorithmKind::Olia => Some(Box::new(OliaFluid::from_loss_rates(losses))),
            AlgorithmKind::Cubic | AlgorithmKind::Wvegas => None,
            AlgorithmKind::Uncoupled
            | AlgorithmKind::Ewtcp
            | AlgorithmKind::Coupled
            | AlgorithmKind::SemiCoupled
            | AlgorithmKind::Mptcp
            | AlgorithmKind::Rfc6356
            | AlgorithmKind::Balia => self.try_build(losses.len().max(1)),
        }
    }

    /// All kinds, in the order the paper introduces them (plus the RFC
    /// restatement and the post-paper zoo last). Derived from
    /// [`AlgorithmKind::ordinal`]: the array length is [`AlgorithmKind::COUNT`],
    /// so a new variant that grows `ordinal`'s match without being added
    /// here is caught by the `all_is_ordered_by_ordinal` test, and a
    /// variant missing from `ordinal` fails to compile.
    pub fn all() -> [AlgorithmKind; Self::COUNT] {
        [
            AlgorithmKind::Uncoupled,
            AlgorithmKind::Ewtcp,
            AlgorithmKind::Coupled,
            AlgorithmKind::SemiCoupled,
            AlgorithmKind::Mptcp,
            AlgorithmKind::Rfc6356,
            AlgorithmKind::Cubic,
            AlgorithmKind::Olia,
            AlgorithmKind::Balia,
            AlgorithmKind::Wvegas,
        ]
    }

    /// The three algorithms the paper's evaluation sections compare head to
    /// head (EWTCP, COUPLED, MPTCP).
    pub fn evaluated() -> [AlgorithmKind; 3] {
        [AlgorithmKind::Ewtcp, AlgorithmKind::Coupled, AlgorithmKind::Mptcp]
    }

    /// The post-paper controller zoo (everything beyond the six rules the
    /// paper states), derived from [`AlgorithmKind::all`] so new kinds are
    /// swept automatically.
    pub fn zoo() -> Vec<AlgorithmKind> {
        Self::all().into_iter().filter(|k| k.ordinal() > AlgorithmKind::Rfc6356.ordinal()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_cc_produces_named_algorithms() {
        let names: Vec<&str> =
            AlgorithmKind::all().iter().map(|k| k.build_cc(2).name()).collect();
        assert_eq!(
            names,
            [
                "UNCOUPLED",
                "EWTCP",
                "COUPLED",
                "SEMICOUPLED",
                "MPTCP",
                "RFC6356",
                "CUBIC",
                "OLIA",
                "BALIA",
                "WVEGAS"
            ]
        );
    }

    /// The anti-drift contract: `all()` and `ordinal()` must agree index
    /// for index. `ordinal`'s exhaustive match means a new variant cannot
    /// compile without an arm; the `COUNT`-typed array means it cannot get
    /// an arm without also appearing here.
    #[test]
    fn all_is_ordered_by_ordinal() {
        for (i, kind) in AlgorithmKind::all().into_iter().enumerate() {
            assert_eq!(kind.ordinal(), i, "{kind:?} out of place in all()");
        }
    }

    #[test]
    fn evaluated_and_zoo_are_subsets_of_all() {
        let all = AlgorithmKind::all();
        for kind in AlgorithmKind::evaluated() {
            assert!(all.contains(&kind));
        }
        let zoo = AlgorithmKind::zoo();
        assert_eq!(zoo.len(), 4);
        for kind in zoo {
            assert!(all.contains(&kind));
            assert!(kind.ordinal() > AlgorithmKind::Rfc6356.ordinal());
        }
    }

    #[test]
    fn build_and_build_cc_cover_the_right_kinds() {
        for kind in AlgorithmKind::all() {
            // The universal constructor covers every kind…
            assert_eq!(kind.build_cc(2).name(), kind.build_cc(3).name());
            // …and the pure constructor exactly the non-stateful ones.
            assert_eq!(kind.try_build(2).is_some(), !kind.is_stateful(), "{kind:?}");
        }
    }

    #[test]
    #[should_panic(expected = "build_cc")]
    fn build_panics_for_stateful_only_kinds() {
        let _ = AlgorithmKind::Cubic.build(2);
    }

    #[test]
    fn fluid_model_covers_the_loss_driven_kinds() {
        let losses = [0.01, 0.02];
        for kind in AlgorithmKind::all() {
            let model = kind.fluid_model(&losses);
            match kind {
                AlgorithmKind::Cubic | AlgorithmKind::Wvegas => assert!(model.is_none()),
                _ => assert!(model.is_some(), "{kind:?} should be fluid-checkable"),
            }
        }
        assert_eq!(AlgorithmKind::Olia.fluid_model(&losses).unwrap().name(), "OLIA");
    }

    #[test]
    fn default_min_window_is_one_packet() {
        for kind in AlgorithmKind::all() {
            assert!((kind.build_cc(3).min_window() - 1.0).abs() < 1e-12);
        }
    }
}
