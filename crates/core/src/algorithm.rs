//! The [`MultipathCc`] trait and a serializable algorithm selector.

use crate::snapshot::SubflowSnapshot;
use crate::{Coupled, Ewtcp, Mptcp, Rfc6356, SemiCoupled, UncoupledReno};

/// A multipath congestion-control rule: how much to open a subflow's window
/// on each ACK, and where to set it after a loss event.
///
/// Implementations are **pure**: they read the state of all subflows of the
/// connection and return the new value; they hold no per-connection mutable
/// state. This mirrors the paper's presentation, where every algorithm is a
/// pair of update rules, and lets the same object drive the fluid model, the
/// simulator, and the protocol stack.
///
/// Conventions:
/// * windows are in packets, RTTs in seconds ([`SubflowSnapshot`]);
/// * `r` indexes into `subs`;
/// * callers apply the probing floor [`MultipathCc::min_window`] after a
///   decrease (the paper bounds windows to ≥ 1 packet in its implementation,
///   §2.4, precisely so a flow keeps probing paths that might improve).
pub trait MultipathCc: Send + Sync {
    /// Short stable name, used in experiment output ("MPTCP", "EWTCP", …).
    fn name(&self) -> &'static str;

    /// Window increment (in packets) granted to subflow `r` for one ACK of
    /// one packet, given the current state of all subflows.
    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64;

    /// The window subflow `r` should drop to on a loss event (before the
    /// probing floor is applied).
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64;

    /// Probing floor: the minimum window a subflow is held at so that it
    /// keeps sampling its path's congestion (§2.4). One packet by default.
    fn min_window(&self) -> f64 {
        1.0
    }

    /// [`MultipathCc::window_after_loss`] with the probing floor applied —
    /// the value an actual sender sets its window to.
    ///
    /// The raw decrease rules can go below one packet or even negative
    /// (COUPLED subtracts `w_total/2` from any subflow, which the fluid
    /// model integrates verbatim to show path abandonment, footnote 5).
    /// A packet-level sender must never do that: a window under one MSS
    /// strands the subflow — it can neither send nor sample its path.
    /// Every simulator/protocol loss event goes through this method.
    fn clamped_window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let raw = self.window_after_loss(r, subs);
        let floor = self.min_window();
        if raw.is_finite() {
            raw.max(floor)
        } else {
            floor
        }
    }
}

/// A selector for the algorithms evaluated in the paper, used by the
/// experiment harness to sweep algorithms from one configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Regular TCP on every subflow, fully uncoupled (§2.1's strawman).
    Uncoupled,
    /// Equally-weighted TCP with per-subflow throughput weight `1/n` (§2.1).
    Ewtcp,
    /// Fully coupled: all traffic moves to the least-congested path (§2.2).
    Coupled,
    /// Semi-coupled with linked increases but per-subflow decreases (§2.4).
    SemiCoupled,
    /// The paper's final algorithm, eq. (1) — RTT-compensated coupling (§2.5).
    Mptcp,
    /// The RFC 6356 restatement of the paper's algorithm (deployed LIA).
    Rfc6356,
}

impl AlgorithmKind {
    /// Instantiate the algorithm for a connection with `n_subflows` paths.
    ///
    /// `n_subflows` only matters for EWTCP, whose weight is a function of the
    /// number of paths; the coupled algorithms adapt automatically.
    pub fn build(self, n_subflows: usize) -> Box<dyn MultipathCc> {
        match self {
            AlgorithmKind::Uncoupled => Box::new(UncoupledReno::new()),
            AlgorithmKind::Ewtcp => Box::new(Ewtcp::equal_split(n_subflows)),
            AlgorithmKind::Coupled => Box::new(Coupled::new()),
            AlgorithmKind::SemiCoupled => Box::new(SemiCoupled::new()),
            AlgorithmKind::Mptcp => Box::new(Mptcp::new()),
            AlgorithmKind::Rfc6356 => Box::new(Rfc6356::new()),
        }
    }

    /// All kinds, in the order the paper introduces them (plus the RFC
    /// restatement last).
    pub fn all() -> [AlgorithmKind; 6] {
        [
            AlgorithmKind::Uncoupled,
            AlgorithmKind::Ewtcp,
            AlgorithmKind::Coupled,
            AlgorithmKind::SemiCoupled,
            AlgorithmKind::Mptcp,
            AlgorithmKind::Rfc6356,
        ]
    }

    /// The three algorithms the paper's evaluation sections compare head to
    /// head (EWTCP, COUPLED, MPTCP).
    pub fn evaluated() -> [AlgorithmKind; 3] {
        [AlgorithmKind::Ewtcp, AlgorithmKind::Coupled, AlgorithmKind::Mptcp]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_produces_named_algorithms() {
        let names: Vec<&str> =
            AlgorithmKind::all().iter().map(|k| k.build(2).name()).collect();
        assert_eq!(
            names,
            ["UNCOUPLED", "EWTCP", "COUPLED", "SEMICOUPLED", "MPTCP", "RFC6356"]
        );
    }

    #[test]
    fn evaluated_is_subset_of_all() {
        let all = AlgorithmKind::all();
        for kind in AlgorithmKind::evaluated() {
            assert!(all.contains(&kind));
        }
    }

    #[test]
    fn default_min_window_is_one_packet() {
        for kind in AlgorithmKind::all() {
            assert!((kind.build(3).min_window() - 1.0).abs() < 1e-12);
        }
    }
}
