//! BALIA — the Balanced Linked Adaptation algorithm of Peng, Walid, Hwang
//! & Low (arXiv:1308.3119), the controller merged into Linux MPTCP as
//! `balia`.
//!
//! BALIA was derived from the same fluid-model framework our
//! [`crate::fluid`] module integrates, as the point in the authors'
//! design space balancing TCP friendliness against responsiveness. Unlike
//! OLIA it needs no inter-loss bookkeeping — both update rules are pure
//! functions of the snapshot slice, so it slots straight into
//! [`MultipathCc`] and is fluid-oracle-checkable like the paper's own
//! algorithms.
//!
//! With `x_k = w_k/RTT_k` and `α_r = max_k(x_k)/x_r ≥ 1` for the best
//! path:
//!
//! * per ACK on path `r`:
//!   `Δw_r = (x_r/RTT_r)/(Σ_k x_k)² · (1+α_r)/2 · (4+α_r)/5`
//! * per loss on path `r`:
//!   `w_r ← w_r · (1 − min(α_r, 1.5)/2)`
//!
//! Sanity anchors (unit-tested below): on a single path `α = 1` and the
//! rules collapse to Reno's `1/w` and `w/2`; on two identical paths the
//! equilibrium total equals one TCP's `√(2/p)` window.

use crate::algorithm::MultipathCc;
use crate::snapshot::SubflowSnapshot;

/// The BALIA update rules (pure, stateless).
#[derive(Debug, Clone, Copy, Default)]
pub struct Balia;

impl Balia {
    /// Construct the algorithm.
    pub fn new() -> Self {
        Self
    }

    /// `α_r = max_k(x_k)/x_r`: how far path `r`'s rate sits below the best
    /// path's. Closed subflows keep snapshot slots; they are skipped.
    fn alpha(r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let x_r = subs[r].rate();
        if x_r <= 0.0 || !x_r.is_finite() {
            return 1.0;
        }
        let max_x =
            subs.iter().filter(|s| s.active).map(|s| s.rate()).fold(x_r, f64::max);
        max_x / x_r
    }
}

impl MultipathCc for Balia {
    fn name(&self) -> &'static str {
        "BALIA"
    }

    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let x_r = subs[r].rate();
        let sum_x: f64 = subs.iter().filter(|s| s.active).map(|s| s.rate()).sum();
        if sum_x <= 0.0 || !sum_x.is_finite() {
            return 0.0;
        }
        let a = Self::alpha(r, subs);
        (x_r / subs[r].rtt) / (sum_x * sum_x) * ((1.0 + a) / 2.0) * ((4.0 + a) / 5.0)
    }

    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let a = Self::alpha(r, subs);
        subs[r].cwnd * (1.0 - a.min(1.5) / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path_balia_is_regular_tcp() {
        let cc = Balia::new();
        let subs = [SubflowSnapshot::new(10.0, 0.1)];
        // α = 1 ⇒ increase = (x/rtt)/x² · 1 · 1 = 1/w, decrease = w/2.
        assert!((cc.increase_per_ack(0, &subs) - 0.1).abs() < 1e-12);
        assert!((cc.window_after_loss(0, &subs) - 5.0).abs() < 1e-12);
    }

    /// On two identical paths BALIA's balance point carries one TCP's
    /// total window: at w_r = ŵ/2 per path (α = 1), increase(ŵ/2) must
    /// equal p · decrease-depth at ŵ = √(2/p) — the same algebraic
    /// identity the paper's algorithms are pinned to.
    #[test]
    fn two_equal_paths_aggregate_to_one_tcp() {
        let p = 0.01_f64;
        let w_hat = (2.0 / p).sqrt();
        let rtt = 0.1;
        let cc = Balia::new();
        let subs = [
            SubflowSnapshot::new(w_hat / 2.0, rtt),
            SubflowSnapshot::new(w_hat / 2.0, rtt),
        ];
        let inc = cc.increase_per_ack(0, &subs);
        let dec = subs[0].cwnd - cc.window_after_loss(0, &subs);
        // Per-RTT balance: (w_r/rtt)·inc = p·(w_r/rtt)·dec ⇒ inc = p·dec.
        assert!((inc - p * dec).abs() / (p * dec) < 1e-9, "inc {inc} vs p·dec {}", p * dec);
    }

    /// The worse path gets the larger α and therefore the deeper decrease,
    /// capped at 75% of the window (α clamped to 1.5).
    #[test]
    fn worse_path_decreases_deeper_but_capped() {
        let cc = Balia::new();
        let subs = [SubflowSnapshot::new(20.0, 0.01), SubflowSnapshot::new(2.0, 0.1)];
        // Path 1's rate is 100× below path 0's: α huge, clamp engages.
        let after = cc.window_after_loss(1, &subs);
        assert!((after - 2.0 * 0.25).abs() < 1e-12, "clamped to w/4, got {after}");
        // Best path: α = 1, classic halving.
        assert!((cc.window_after_loss(0, &subs) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn closed_subflows_do_not_drag_alpha() {
        let cc = Balia::new();
        let with_ghost = [
            SubflowSnapshot::new(10.0, 0.1),
            SubflowSnapshot::new(500.0, 0.01).active(false),
        ];
        // The closed path's huge stale rate must not inflate α.
        assert!((cc.window_after_loss(0, &with_ghost) - 5.0).abs() < 1e-12);
        assert!((cc.increase_per_ack(0, &with_ghost) - 0.1).abs() < 1e-12);
    }
}
