//! The RFC 6356 formulation of the paper's algorithm ("LIA").
//!
//! The IETF standardized the paper's eq. (1) as RFC 6356 ("Coupled
//! Congestion Control for Multipath Transport Protocols"), restating the
//! per-ACK increase through a single coupling parameter `alpha`:
//!
//! ```text
//!             max_i (cwnd_i / rtt_i²)
//! alpha = cwnd_total · ────────────────────────
//!             ( Σ_i cwnd_i / rtt_i )²
//!
//! increase on subflow r = min( alpha / cwnd_total , 1 / cwnd_r )
//! ```
//!
//! This is exactly the paper's §2.5 construction (`a` of eq. (5) evaluated
//! on instantaneous windows, capped by regular TCP's `1/w_r`), and it
//! coincides with eq. (1)'s subset minimum **whenever the minimizing subset
//! is either the full set or the singleton** — which the appendix shows is
//! the case at equilibrium for two subflows, but *not* always for three or
//! more off equilibrium. [`Rfc6356`] therefore may be slightly more
//! aggressive than [`Mptcp`](crate::Mptcp) in transients; the property
//! tests bound the relationship (`rfc6356 ≥ eq.(1)` pointwise, equality
//! for `n ≤ 2`).

use crate::algorithm::MultipathCc;
use crate::snapshot::{total_window, SubflowSnapshot};

/// RFC 6356's Linked-Increases Algorithm, as deployed in Linux MPTCP.
#[derive(Debug, Clone, Copy, Default)]
pub struct Rfc6356;

impl Rfc6356 {
    /// Create the RFC 6356 algorithm.
    pub fn new() -> Self {
        Self
    }

    /// The RFC's coupling parameter `alpha` for the current windows.
    pub fn alpha(subs: &[SubflowSnapshot]) -> f64 {
        let cwnd_total = total_window(subs);
        let max_term =
            subs.iter().map(|s| s.cwnd / (s.rtt * s.rtt)).fold(0.0_f64, f64::max);
        let sum: f64 = subs.iter().map(|s| s.cwnd / s.rtt).sum();
        cwnd_total * max_term / (sum * sum)
    }
}

impl MultipathCc for Rfc6356 {
    fn name(&self) -> &'static str {
        "RFC6356"
    }

    /// `min(alpha/cwnd_total, 1/cwnd_r)` per ACK.
    fn increase_per_ack(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        let alpha = Self::alpha(subs);
        (alpha / total_window(subs)).min(1.0 / subs[r].cwnd)
    }

    /// Halve the subflow window, as the RFC specifies (unchanged from TCP).
    fn window_after_loss(&self, r: usize, subs: &[SubflowSnapshot]) -> f64 {
        subs[r].cwnd / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lia::lia_increase_linear;

    fn snap(pairs: &[(f64, f64)]) -> Vec<SubflowSnapshot> {
        pairs.iter().map(|&(w, rtt)| SubflowSnapshot::new(w, rtt)).collect()
    }

    #[test]
    fn single_path_is_regular_tcp() {
        let cc = Rfc6356::new();
        let subs = snap(&[(10.0, 0.1)]);
        assert!((cc.increase_per_ack(0, &subs) - 0.1).abs() < 1e-12);
        assert!((cc.window_after_loss(0, &subs) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn two_subflows_match_eq1_exactly() {
        // For n = 2 the eq. (1) minimum ranges over {r}, {r, other} and the
        // RFC's min(alpha/total, 1/w_r) covers the same two candidates when
        // r is the subflow with the smaller w/rtt² — and dominates
        // otherwise. Check exact agreement on the dominated side.
        let cases = [
            snap(&[(10.0, 0.1), (10.0, 0.1)]),
            snap(&[(5.0, 0.01), (50.0, 0.2)]),
            snap(&[(80.0, 0.3), (3.0, 0.02)]),
        ];
        let cc = Rfc6356::new();
        for subs in &cases {
            // Index of the subflow with the smaller w/rtt² (the one whose
            // suffix search spans both candidate sets).
            let r = if subs[0].cwnd / (subs[0].rtt * subs[0].rtt)
                <= subs[1].cwnd / (subs[1].rtt * subs[1].rtt)
            {
                0
            } else {
                1
            };
            let rfc = cc.increase_per_ack(r, subs);
            let eq1 = lia_increase_linear(r, subs);
            assert!(
                (rfc - eq1).abs() < 1e-12 * eq1.max(1e-30),
                "mismatch: rfc {rfc} eq1 {eq1} for {subs:?}"
            );
        }
    }

    #[test]
    fn never_less_aggressive_than_eq1() {
        // eq. (1) minimizes over all subsets; the RFC considers only two of
        // them, so its increase can only be ≥.
        let cases = [
            snap(&[(10.0, 0.01), (5.0, 0.2), (80.0, 0.05)]),
            snap(&[(1.0, 0.5), (100.0, 0.01), (20.0, 0.05), (7.0, 0.3)]),
        ];
        let cc = Rfc6356::new();
        for subs in &cases {
            for r in 0..subs.len() {
                let rfc = cc.increase_per_ack(r, subs);
                let eq1 = lia_increase_linear(r, subs);
                assert!(rfc >= eq1 - 1e-15, "rfc {rfc} < eq1 {eq1} at r={r}");
            }
        }
    }

    #[test]
    fn capped_by_regular_tcp() {
        let cc = Rfc6356::new();
        let subs = snap(&[(2.0, 0.5), (100.0, 0.01)]);
        for r in 0..2 {
            assert!(cc.increase_per_ack(r, &subs) <= 1.0 / subs[r].cwnd + 1e-15);
        }
    }

    #[test]
    fn equilibrium_matches_eq1_for_two_paths() {
        use crate::fluid::equilibrium;
        let loss = [0.04, 0.01];
        let rtt = [0.010, 0.100];
        let w_rfc = equilibrium(&Rfc6356::new(), &loss, &rtt);
        let w_eq1 = equilibrium(&crate::Mptcp::new(), &loss, &rtt);
        for (a, b) in w_rfc.iter().zip(&w_eq1) {
            assert!((a - b).abs() / b < 0.02, "equilibria differ: {a} vs {b}");
        }
    }
}
