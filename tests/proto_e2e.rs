//! Cross-crate integration tests: the §6 protocol layer end to end,
//! including property-based stream-integrity tests under randomized
//! network faults.

use mptcp_proto::scenarios::{
    inferred_data_ack_drops_packet, payload_encoded_data_acks_deadlock,
    per_subflow_buffer_wedges, AckDesign,
};
use mptcp_proto::{EndpointConfig, Harness, RecvBufferMode, Wire, WireFault};
use proptest::prelude::*;

fn patterned(n: usize, salt: u8) -> Vec<u8> {
    (0..n).map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt)).collect()
}

#[test]
fn big_transfer_over_three_subflows() {
    let wires = vec![Wire::new(2_000, 1), Wire::new(7_000, 2), Wire::new(15_000, 3)];
    let mut h = Harness::new(EndpointConfig::default(), wires, 99);
    let data = patterned(500_000, 1);
    let got = h.transfer(&data, 200_000).expect("must complete");
    assert_eq!(got, data);
    for i in 0..3 {
        assert!(h.client.subflow_established(i), "subflow {i} joined");
    }
}

#[test]
fn rejected_designs_fail_and_chosen_design_does_not() {
    // The §6 counterexamples as a single integration check.
    assert!(per_subflow_buffer_wedges(RecvBufferMode::Shared, 400_000).completed);
    assert!(!per_subflow_buffer_wedges(RecvBufferMode::PerSubflow, 400_000).completed);
    assert!(inferred_data_ack_drops_packet(AckDesign::Inferred));
    assert!(!inferred_data_ack_drops_packet(AckDesign::Explicit));
    assert!(payload_encoded_data_acks_deadlock(true, 10_000));
    assert!(!payload_encoded_data_acks_deadlock(false, 10_000));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Stream integrity: whatever combination of loss, jitter, and ISN
    /// rewriting the two paths apply, the receiver reads exactly the bytes
    /// the sender wrote.
    #[test]
    fn stream_is_byte_exact_under_random_faults(
        loss0 in 0.0_f64..0.10,
        loss1 in 0.0_f64..0.10,
        jitter in 0_u64..3_000,
        isn_offset in prop::option::of(1_u32..u32::MAX / 2),
        size in 10_000_usize..80_000,
        seed in 0_u64..1_000,
    ) {
        let mut w0 = Wire::new(3_000, seed).with_fault(WireFault::Loss(loss0));
        if jitter > 0 {
            w0 = w0.with_fault(WireFault::Jitter(jitter));
        }
        if let Some(off) = isn_offset {
            w0 = w0.with_fault(WireFault::RewriteIsn(off));
        }
        let w1 = Wire::new(8_000, seed + 1).with_fault(WireFault::Loss(loss1));
        let mut h = Harness::new(EndpointConfig::default(), vec![w0, w1], 5);
        let data = patterned(size, (seed % 251) as u8);
        let got = h.transfer(&data, 600_000);
        prop_assert!(got.is_some(), "transfer timed out");
        prop_assert_eq!(got.unwrap(), data);
    }

    /// Fallback safety: stripping options on the FIRST subflow must always
    /// produce a working regular-TCP connection, never a broken hybrid.
    #[test]
    fn fallback_under_random_loss(
        loss in 0.0_f64..0.05,
        size in 5_000_usize..40_000,
        seed in 0_u64..1_000,
    ) {
        let wires = vec![
            Wire::new(3_000, seed)
                .with_fault(WireFault::StripOptions)
                .with_fault(WireFault::Loss(loss)),
            Wire::new(3_000, seed + 9),
        ];
        let mut h = Harness::new(EndpointConfig::default(), wires, 5);
        let data = patterned(size, 7);
        let got = h.transfer(&data, 600_000);
        prop_assert!(got.is_some(), "fallback transfer timed out");
        prop_assert_eq!(got.unwrap(), data);
        prop_assert!(h.client.is_fallback());
    }
}
