//! Cross-thread determinism of the sharded engine: the same simulation,
//! fault schedule and horizon must produce a **bit-identical history**
//! under any worker-thread count.
//!
//! The sharded engine (DESIGN.md §3.2f) synchronizes shards with
//! conservative-lookahead epoch barriers; within an epoch, shards process
//! events concurrently and exchange boundary-crossing packets through
//! per-pair mailboxes that are drained in fixed shard order. If any of
//! that machinery leaked thread-schedule nondeterminism — a mailbox
//! drained in arrival order, a digest merged in completion order, a
//! lookahead rounded differently off a racing clock — these properties
//! would catch it: each randomized fault schedule is replayed at
//! `jobs = 1` (the serial reference), `2`, and an oversubscribed top
//! count, and every replay must agree on the merged [`DetDigest`] *and*
//! on every connection's full stats digest.
//!
//! The flow-churn property adds the arena lifecycle to the mix: flows
//! arriving and *retiring* mid-run mean window recycling — and the
//! free-list order it depends on — must itself be schedule-independent.
//!
//! Case count scales with `MPTCP_CHAOS_CASES` (default 6 so `cargo test`
//! stays quick; the nightly CI job raises it). The top worker count
//! defaults to 8 and can be swept with `MPTCP_SHARD_JOBS` — the nightly
//! job runs a thread-count matrix over it.

use mptcp_bench::datacenter::dc_link;
use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, DetDigest, FaultPlan, ShardedSimulator, SimTime};
use mptcp_topology::{FatTree, ShardedDualHomed, Torus};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HORIZON: SimTime = SimTime::from_secs(30);

fn chaos_cases() -> u32 {
    std::env::var("MPTCP_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(6)
}

/// Worker counts to compare: 1 (the serial reference) and 2 always, plus a
/// top count that deliberately oversubscribes small hosts — the barrier
/// protocol must not care. CI's thread-count matrix sweeps the top count
/// via `MPTCP_SHARD_JOBS`.
fn jobs_matrix() -> [usize; 3] {
    let top =
        std::env::var("MPTCP_SHARD_JOBS").ok().and_then(|v| v.parse().ok()).unwrap_or(8);
    [1, 2, top.max(2)]
}

/// Everything a replay must reproduce: the engine's merged state digest
/// and each connection's full `ConnectionStats` digest (the stats struct
/// has no `PartialEq` by design — the digest covers every field), plus
/// delivered counts so a mismatch prints something human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    merged_digest: u64,
    conn_digests: Vec<u64>,
    delivered: Vec<u64>,
}

fn outcome(sim: &ShardedSimulator, conns: &[usize]) -> Outcome {
    Outcome {
        merged_digest: sim.det_digest(),
        conn_digests: conns.iter().map(|&c| sim.connection_stats(c).digest_value()).collect(),
        delivered: conns.iter().map(|&c| sim.connection_stats(c).data_delivered).collect(),
    }
}

/// Fig. 8's five-link torus, sharded three ways, under a randomized fault
/// schedule on all five bottleneck links.
fn run_torus(seed: u64, fault_seed: u64, jobs: usize) -> Outcome {
    let mut sim = ShardedSimulator::new(seed, 3);
    let t = Torus::build_sharded(&mut sim, [1000.0; 5], AlgorithmKind::Mptcp);
    sim.install_fault_plan(&FaultPlan::randomized(fault_seed, &t.links, HORIZON));
    sim.set_jobs(jobs);
    sim.run_until(HORIZON);
    outcome(&sim, &t.flows)
}

/// The §5 dual-homed server, sharded two ways: one bulk multipath client
/// spanning both shards plus a finite single-path download on the slower
/// link, with faults on both access links.
fn run_dual_homed(seed: u64, fault_seed: u64, pkts: u64, jobs: usize) -> Outcome {
    let mut sim = ShardedSimulator::new(seed, 2);
    let d = ShardedDualHomed::build(&mut sim, [12.0, 4.0], SimTime::from_millis(10), 25);
    let mp = d.add_multipath_client(&mut sim, AlgorithmKind::Mptcp, SimTime::ZERO);
    let sp = d.add_single_path_transfer(&mut sim, 1, pkts, SimTime::from_millis(500));
    sim.install_fault_plan(&FaultPlan::randomized(fault_seed, &d.links, HORIZON));
    sim.set_jobs(jobs);
    sim.run_until(HORIZON);
    outcome(&sim, &[mp, sp])
}

/// Randomized mid-run flow churn on a pod-sharded FatTree k = 4 under the
/// arena's first-class lifecycle mode: finite 2-subflow flows arrive at
/// random times across the first 2 s, complete, and retire (freeing their
/// hot windows for recycling) while later flows are still arriving. The
/// replay must agree not just on the digests but on the merged arena
/// reuse count — window recycling order is part of the history.
fn run_churn(seed: u64, arrival_seed: u64, flows: usize, jobs: usize) -> (Outcome, Vec<u64>, u64) {
    let mut sim = ShardedSimulator::new(seed, 3);
    sim.set_flow_lifecycle(true);
    let ft = FatTree::build_sharded(&mut sim, 4, dc_link());
    let hosts = ft.host_count();
    let mut rng = StdRng::seed_from_u64(arrival_seed);
    let mut conns = Vec::with_capacity(flows);
    let mut sizes = Vec::with_capacity(flows);
    for _ in 0..flows {
        let src = rng.gen_range(0..hosts);
        let mut dst = rng.gen_range(0..hosts - 1);
        if dst >= src {
            dst += 1;
        }
        let pkts = rng.gen_range(2u64..40);
        let start = SimTime::from_micros(rng.gen_range(0u64..2_000_000));
        let mut spec = ConnectionSpec::sized(AlgorithmKind::Mptcp, pkts).start(start);
        for p in ft.random_paths(src, dst, 2, &mut rng) {
            spec = spec.path(p);
        }
        conns.push(sim.add_connection(spec));
        sizes.push(pkts);
    }
    sim.set_jobs(jobs);
    // 2.5 s horizon: the last arrival lands by 2 s, service time on these
    // short flows is milliseconds, and the ~150 ms retirement grace still
    // fits with margin — so every flow both finishes *and* retires. The
    // 2 s arrival window is >10× the grace, so early windows recycle into
    // late arrivals mid-run.
    sim.run_until(SimTime::from_millis(2_500));
    (outcome(&sim, &conns), sizes, sim.arena_hot_reuses())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn sharded_torus_history_is_independent_of_worker_count(
        seed in 1u64..u32::MAX as u64,
        fault_seed in 0u64..u32::MAX as u64,
    ) {
        let reference = run_torus(seed, fault_seed, 1);
        prop_assert!(
            reference.delivered.iter().sum::<u64>() > 0,
            "degenerate schedule delivered nothing: {reference:?}"
        );
        for jobs in jobs_matrix() {
            let replay = run_torus(seed, fault_seed, jobs);
            prop_assert_eq!(
                &reference,
                &replay,
                "torus history diverged at jobs={} (seed={}, fault_seed={})",
                jobs,
                seed,
                fault_seed
            );
        }
    }

    #[test]
    fn sharded_dual_homed_history_is_independent_of_worker_count(
        seed in 1u64..u32::MAX as u64,
        fault_seed in 0u64..u32::MAX as u64,
        pkts in 500u64..4_000,
    ) {
        let reference = run_dual_homed(seed, fault_seed, pkts, 1);
        for jobs in jobs_matrix() {
            let replay = run_dual_homed(seed, fault_seed, pkts, jobs);
            prop_assert_eq!(
                &reference,
                &replay,
                "dual-homed history diverged at jobs={} (seed={}, fault_seed={}, pkts={})",
                jobs,
                seed,
                fault_seed,
                pkts
            );
        }
    }

    #[test]
    fn sharded_flow_churn_history_is_independent_of_worker_count(
        seed in 1u64..u32::MAX as u64,
        arrival_seed in 0u64..u32::MAX as u64,
    ) {
        let (reference, sizes, reuses) = run_churn(seed, arrival_seed, 60, 1);
        // Exactly-once accounting on the serial reference: every finite
        // flow finished before the horizon and each of its data packets
        // was delivered exactly once — retirement must not strand or
        // double-count in-flight data.
        for (i, (&got, &want)) in reference.delivered.iter().zip(&sizes).enumerate() {
            prop_assert_eq!(
                got, want,
                "flow {} delivered {} of {} packets exactly-once (seed={}, arrival_seed={})",
                i, got, want, seed, arrival_seed
            );
        }
        // The schedule must actually churn: early flows retire while late
        // ones arrive, so recycled windows get re-tenanted mid-run.
        prop_assert!(
            reuses > 0,
            "schedule produced no window recycling (seed={seed}, arrival_seed={arrival_seed})"
        );
        for jobs in jobs_matrix() {
            let (replay, _, replay_reuses) = run_churn(seed, arrival_seed, 60, jobs);
            prop_assert_eq!(
                &reference,
                &replay,
                "churn history diverged at jobs={} (seed={}, arrival_seed={})",
                jobs,
                seed,
                arrival_seed
            );
            prop_assert_eq!(
                reuses,
                replay_reuses,
                "arena recycling diverged at jobs={} (seed={}, arrival_seed={})",
                jobs,
                seed,
                arrival_seed
            );
        }
    }
}
