//! Cross-crate integration tests: §2's worked examples, cross-checked
//! between the fluid model and the packet-level simulator.

use mptcp_cc::fluid::fairness::check_fairness;
use mptcp_cc::fluid::{equilibrium, tcp_rate};
use mptcp_cc::{Coupled, Ewtcp, Mptcp};
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

/// §2.3's numbers from the fluid model: 707 / 424 / 141 pkt/s.
#[test]
fn sec23_wifi_3g_numbers() {
    let loss = [0.04, 0.01];
    let rtt = [0.010, 0.100];
    let wifi = tcp_rate(loss[0], rtt[0]);
    let threeg = tcp_rate(loss[1], rtt[1]);
    assert!((wifi - 707.0).abs() < 2.0);
    assert!((threeg - 141.0).abs() < 2.0);

    let rate = |cc: &dyn mptcp_cc::MultipathCc| -> f64 {
        equilibrium(cc, &loss, &rtt).iter().zip(&rtt).map(|(w, t)| w / t).sum()
    };
    let ewtcp = rate(&Ewtcp::equal_split(2));
    assert!((ewtcp - 424.0).abs() < 15.0, "EWTCP ≈ (707+141)/2, got {ewtcp}");
    let coupled = rate(&Coupled::new());
    assert!((coupled - 141.0).abs() < 10.0, "COUPLED collapses to 3G, got {coupled}");
    let mptcp = rate(&Mptcp::new());
    assert!(mptcp > 0.95 * wifi, "MPTCP ≥ best single path, got {mptcp} vs {wifi}");
}

/// The appendix theorem, spot-checked at an adversarial configuration:
/// MPTCP's equilibrium meets (3) and (4) where both reference algorithms
/// fail one of them.
#[test]
fn fairness_goals_hold_only_for_mptcp() {
    let loss = [0.04, 0.002, 0.02];
    let rtt = [0.010, 0.300, 0.050];
    let w = equilibrium(&Mptcp::new(), &loss, &rtt);
    let rep = check_fairness(&w, &loss, &rtt, 0.08);
    assert!(rep.incentive_ok && rep.no_harm_ok, "{rep:?}");

    let w = equilibrium(&Ewtcp::equal_split(3), &loss, &rtt);
    let rep_e = check_fairness(&w, &loss, &rtt, 0.08);
    let w = equilibrium(&Coupled::new(), &loss, &rtt);
    let rep_c = check_fairness(&w, &loss, &rtt, 0.08);
    assert!(
        !(rep_e.incentive_ok && rep_e.no_harm_ok && rep_c.incentive_ok && rep_c.no_harm_ok),
        "at least one strawman should fail the dual goals: {rep_e:?} {rep_c:?}"
    );
}

/// "Trying too hard to be fair?" (§2.5): with NO competing traffic,
/// MPTCP's throughput equals the sum of the two access links — the
/// fairness goal does not cap it at the faster link. Simulator check.
#[test]
fn no_competition_gets_the_sum_of_links() {
    let mut sim = Simulator::new(23);
    let a = sim.add_link(LinkSpec::mbps(14.4, SimTime::from_millis(5), 24));
    let b = sim.add_link(LinkSpec::mbps(2.0, SimTime::from_millis(75), 50));
    let c =
        sim.add_connection(ConnectionSpec::bulk(mptcp_cc::AlgorithmKind::Mptcp).path(vec![a]).path(vec![b]));
    sim.run_until(SimTime::from_secs(60));
    let bps = sim.connection_stats(c).throughput_bps(sim.now());
    assert!(
        bps > 0.85 * 16.4e6,
        "uncontested MPTCP should aggregate ≈16.4 Mb/s, got {:.1} Mb/s",
        bps / 1e6
    );
}

/// The fluid model and the simulator agree on the §2.3 scenario within
/// simulation noise: fixed random loss rates, measured goodputs.
#[test]
fn fluid_and_simulator_agree_on_rtt_mismatch() {
    // Simulator version of fixed-loss paths: fat links (no queueing loss)
    // with Bernoulli loss at the configured rates.
    let run = |alg: mptcp_cc::AlgorithmKind| -> f64 {
        let mut sim = Simulator::new(29);
        let wifi = sim
            .add_link(LinkSpec::pkts_per_sec(100_000.0, SimTime::from_millis(5), 1_000).with_loss(0.04));
        let tg = sim
            .add_link(LinkSpec::pkts_per_sec(100_000.0, SimTime::from_millis(50), 1_000).with_loss(0.01));
        let c = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![wifi]).path(vec![tg]));
        sim.run_until(SimTime::from_secs(10));
        let before = sim.connection_stats(c).delivered_pkts();
        sim.run_until(SimTime::from_secs(70));
        (sim.connection_stats(c).delivered_pkts() - before) as f64 / 60.0
    };
    let measured = run(mptcp_cc::AlgorithmKind::Mptcp);
    let predicted: f64 = equilibrium(&Mptcp::new(), &[0.04, 0.01], &[0.010, 0.100])
        .iter()
        .zip(&[0.010, 0.100])
        .map(|(w, t)| w / t)
        .sum();
    let ratio = measured / predicted;
    assert!(
        (0.5..1.6).contains(&ratio),
        "simulator ({measured:.0} pkt/s) should be near fluid prediction ({predicted:.0})"
    );
}
