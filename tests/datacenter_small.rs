//! Cross-crate integration tests: scaled-down §4 data-center scenarios.
//!
//! The full 128-host FatTree and 125-host BCube runs live in the bench
//! harness; these tests pin the qualitative claims on small instances so
//! they run in CI time.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};
use mptcp_topology::{BCube, FatTree};
use mptcp_workload::{random_permutation_pairs, sparse_pairs};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dc_link() -> LinkSpec {
    LinkSpec::mbps(100.0, SimTime::from_micros(10), 100)
}

fn mean_goodput_mbps(sim: &mut Simulator, conns: &[usize], secs: u64) -> f64 {
    sim.run_until(SimTime::from_secs(2));
    let before: Vec<u64> =
        conns.iter().map(|&c| sim.connection_stats(c).delivered_pkts()).collect();
    sim.run_until(SimTime::from_secs(2 + secs));
    let total: f64 = conns
        .iter()
        .zip(before)
        .map(|(&c, b)| (sim.connection_stats(c).delivered_pkts() - b) as f64)
        .sum();
    total * 1500.0 * 8.0 / secs as f64 / conns.len() as f64 / 1e6
}

/// TP1 on FatTree(k=4): MPTCP with all 4 paths clearly beats ECMP
/// single-path (the Fig. 12 / TAB_FATTREE claim, small scale).
#[test]
fn fattree_tp1_multipath_beats_single_path() {
    let run = |multi: bool| -> f64 {
        let mut sim = Simulator::new(3);
        let ft = FatTree::build(&mut sim, 4, dc_link());
        let mut rng = StdRng::seed_from_u64(14);
        let pairs = random_permutation_pairs(ft.host_count(), &mut rng);
        let conns: Vec<usize> = pairs
            .iter()
            .map(|&(s, d)| {
                if multi {
                    let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
                    for p in ft.random_paths(s, d, 4, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                } else {
                    sim.add_connection(
                        ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                            .path(ft.ecmp_path(s, d, &mut rng)),
                    )
                }
            })
            .collect();
        mean_goodput_mbps(&mut sim, &conns, 8)
    };
    let single = run(false);
    let multi = run(true);
    assert!(
        multi > 1.15 * single,
        "MPTCP ({multi:.1} Mb/s) should clearly beat ECMP single path ({single:.1} Mb/s)"
    );
    assert!(multi > 55.0, "MPTCP should reach a large share of the 100 Mb/s NIC: {multi:.1}");
}

/// Sparse traffic on BCube: multipath can use all `k+1` interfaces, so it
/// beats single-path by a large factor when the core is idle (TP3 claim).
#[test]
fn bcube_tp3_multipath_uses_all_interfaces() {
    let run = |multi: bool| -> f64 {
        let mut sim = Simulator::new(4);
        let bc = BCube::build(&mut sim, 3, 1, dc_link()); // 9 hosts, 2 ifaces
        let mut rng = StdRng::seed_from_u64(15);
        let pairs = sparse_pairs(bc.host_count(), 0.3, &mut rng);
        let conns: Vec<usize> = pairs
            .iter()
            .map(|&(s, d)| {
                if multi {
                    let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
                    for p in bc.path_set(s, d, &mut rng) {
                        spec = spec.path(p);
                    }
                    sim.add_connection(spec)
                } else {
                    sim.add_connection(
                        ConnectionSpec::bulk(AlgorithmKind::Uncoupled)
                            .path(bc.single_path(s, d)),
                    )
                }
            })
            .collect();
        mean_goodput_mbps(&mut sim, &conns, 8)
    };
    let single = run(false);
    let multi = run(true);
    assert!(single < 105.0, "single-path is NIC-bound at 100 Mb/s, got {single:.1}");
    assert!(
        multi > 1.3 * single,
        "2-interface BCube multipath ({multi:.1}) should far exceed single ({single:.1})"
    );
}

/// Fig. 12's dose-response at small scale: more paths, more throughput
/// (monotone up to the path diversity the fabric has).
#[test]
fn fattree_throughput_rises_with_path_count() {
    let run = |paths: usize| -> f64 {
        let mut sim = Simulator::new(5);
        let ft = FatTree::build(&mut sim, 4, dc_link());
        let mut rng = StdRng::seed_from_u64(16);
        let pairs = random_permutation_pairs(ft.host_count(), &mut rng);
        let conns: Vec<usize> = pairs
            .iter()
            .map(|&(s, d)| {
                let mut spec = ConnectionSpec::bulk(AlgorithmKind::Mptcp);
                for p in ft.random_paths(s, d, paths, &mut rng) {
                    spec = spec.path(p);
                }
                sim.add_connection(spec)
            })
            .collect();
        mean_goodput_mbps(&mut sim, &conns, 8)
    };
    let one = run(1);
    let four = run(4);
    assert!(
        four > 1.1 * one,
        "4 paths ({four:.1} Mb/s) should beat 1 path ({one:.1} Mb/s)"
    );
}
