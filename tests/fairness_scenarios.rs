//! Cross-crate integration tests: the §2 fairness scenarios, measured in
//! the packet-level simulator (not just the fluid model).

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, LinkSpec, SimTime, Simulator};

/// Measure each connection's goodput in pkt/s over `window` after `warmup`.
fn goodputs(sim: &mut Simulator, conns: &[usize], warmup: u64, window: u64) -> Vec<f64> {
    sim.run_until(SimTime::from_secs(warmup));
    let before: Vec<u64> =
        conns.iter().map(|&c| sim.connection_stats(c).delivered_pkts()).collect();
    sim.run_until(SimTime::from_secs(warmup + window));
    conns
        .iter()
        .zip(before)
        .map(|(&c, b)| (sim.connection_stats(c).delivered_pkts() - b) as f64 / window as f64)
        .collect()
}

/// Fig. 1 (§2.1): a 2-subflow connection and a single-path TCP share one
/// bottleneck. Uncoupled grabs ~2× the TCP's share; MPTCP splits ~1:1.
#[test]
fn fig1_shared_bottleneck_fairness() {
    let run = |alg: AlgorithmKind| -> f64 {
        let mut sim = Simulator::new(5);
        let l = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(25), 50));
        let tcp =
            sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        let mp = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![l]).path(vec![l]));
        let g = goodputs(&mut sim, &[tcp, mp], 30, 120);
        g[1] / g[0] // multipath share relative to the single TCP
    };
    let uncoupled = run(AlgorithmKind::Uncoupled);
    let mptcp = run(AlgorithmKind::Mptcp);
    assert!(
        uncoupled > 1.5,
        "two uncoupled subflows should take ~2× one TCP, got {uncoupled:.2}×"
    );
    assert!(
        (0.6..1.5).contains(&mptcp),
        "MPTCP should take ~1× one TCP at a shared bottleneck, got {mptcp:.2}×"
    );
    assert!(mptcp < uncoupled, "coupling must reduce aggressiveness");
}

/// §2.5 incentive goal in the simulator: on two paths with wildly
/// different RTTs and loss environments, MPTCP's total is at least ~90% of
/// the best single-path TCP, while COUPLED collapses to the slow path.
#[test]
fn rtt_mismatch_incentive() {
    let build = |seed| {
        let mut sim = Simulator::new(seed);
        // Fast lossy path vs slow clean path (the §2.3 shape).
        let fast =
            sim.add_link(LinkSpec::pkts_per_sec(800.0, SimTime::from_millis(5), 12).with_loss(0.01));
        let slow = sim.add_link(LinkSpec::pkts_per_sec(200.0, SimTime::from_millis(100), 150));
        (sim, fast, slow)
    };

    // Best single path (run each alone).
    let mut best = 0.0_f64;
    for which in 0..2 {
        let (mut sim, fast, slow) = build(8);
        let l = if which == 0 { fast } else { slow };
        let c =
            sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
        best = best.max(goodputs(&mut sim, &[c], 20, 60)[0]);
    }

    let run = |alg| {
        let (mut sim, fast, slow) = build(8);
        let c = sim.add_connection(ConnectionSpec::bulk(alg).path(vec![fast]).path(vec![slow]));
        goodputs(&mut sim, &[c], 20, 60)[0]
    };
    let mptcp = run(AlgorithmKind::Mptcp);
    let coupled = run(AlgorithmKind::Coupled);
    assert!(
        mptcp > 0.85 * best,
        "MPTCP {mptcp:.0} pkt/s should approach the best single path {best:.0}"
    );
    assert!(
        mptcp > coupled,
        "MPTCP ({mptcp:.0}) must beat COUPLED ({coupled:.0}) under RTT mismatch"
    );
}

/// §2.4 in the simulator (the Fig. 9 scenario): under repeated bursts on
/// the top link, COUPLED gets "trapped" off it — its decrease is
/// proportional to the *total* window, so every burst evicts it entirely
/// and its probe traffic rediscovers the free capacity slowly. MPTCP's
/// per-subflow decrease keeps it markedly better; the bottom link stays
/// fully used by everyone. (The paper's table: EWTCP 85 / MPTCP 83 /
/// COUPLED 55 on top; we pin the ordering and the bottom-link utilization
/// — absolute top-link recovery depends on loss-recovery details the
/// paper does not specify.)
#[test]
fn trapping_under_repeated_bursts() {
    let run = |alg: AlgorithmKind| -> (f64, f64) {
        let mut sim = Simulator::new(9);
        let top = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
        let bottom = sim.add_link(LinkSpec::mbps(100.0, SimTime::from_millis(5), 50));
        let conn =
            sim.add_connection(ConnectionSpec::bulk(alg).path(vec![top]).path(vec![bottom]));
        sim.add_cbr(
            mptcp_netsim::CbrSpec::constant(vec![top], 100e6)
                .onoff(SimTime::from_millis(10), SimTime::from_millis(100)),
        );
        sim.run_until(SimTime::from_secs(10));
        let st = sim.connection_stats(conn);
        let (b0, b1) = (st.subflows[0].delivered_pkts, st.subflows[1].delivered_pkts);
        sim.run_until(SimTime::from_secs(70));
        let st = sim.connection_stats(conn);
        let f = 1500.0 * 8.0 / 60.0 / 1e6;
        (
            (st.subflows[0].delivered_pkts - b0) as f64 * f,
            (st.subflows[1].delivered_pkts - b1) as f64 * f,
        )
    };
    let (mptcp_top, mptcp_bottom) = run(AlgorithmKind::Mptcp);
    let (coupled_top, coupled_bottom) = run(AlgorithmKind::Coupled);
    assert!(
        mptcp_top > 1.3 * coupled_top,
        "MPTCP top ({mptcp_top:.1}) must clearly beat trapped COUPLED ({coupled_top:.1})"
    );
    assert!(mptcp_bottom > 90.0, "bottom link stays full: {mptcp_bottom:.1}");
    assert!(coupled_bottom > 90.0, "bottom link stays full: {coupled_bottom:.1}");
}

/// Drop-in property: a single-subflow MPTCP connection competes with a
/// regular TCP like a regular TCP (±30%).
#[test]
fn single_subflow_mptcp_is_a_drop_in_tcp() {
    let mut sim = Simulator::new(10);
    let l = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(25), 50));
    let tcp = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![l]));
    let mp = sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![l]));
    let g = goodputs(&mut sim, &[tcp, mp], 30, 120);
    let ratio = g[1] / g[0];
    assert!(
        (0.7..1.4).contains(&ratio),
        "single-subflow MPTCP should match TCP, ratio {ratio:.2}"
    );
}

/// §2.4 Fig. 5: two links, two TCPs on each, one multipath flow over
/// both. When one TCP on the top link terminates, the multipath flow must
/// move onto the freed capacity *quickly* — within the first ten seconds
/// it should already hold a large share of the fair target (≈ 500 pkt/s:
/// the link now carries one TCP and one subflow).
///
/// Note: in this clean static scenario even COUPLED eventually adapts
/// (its 1-packet probe gets steady feedback); the paper's "trapped"
/// pathology needs bursty, noisy feedback and is pinned by
/// [`trapping_under_repeated_bursts`]. Here we pin the adaptation speed
/// the paper's design requires of MPTCP.
#[test]
fn fig5_load_change() {
    let mut sim = Simulator::new(31);
    let top = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(25), 50));
    let bottom = sim.add_link(LinkSpec::pkts_per_sec(1000.0, SimTime::from_millis(25), 50));
    let mut tops = Vec::new();
    for _ in 0..2 {
        tops.push(
            sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![top])),
        );
        sim.add_connection(ConnectionSpec::bulk(AlgorithmKind::Uncoupled).path(vec![bottom]));
    }
    let mp = sim.add_connection(
        ConnectionSpec::bulk(AlgorithmKind::Mptcp).path(vec![top]).path(vec![bottom]),
    );
    // Converge with 2 TCPs per link: the multipath top subflow holds about
    // a third of the top link at most.
    sim.run_until(SimTime::from_secs(60));
    let before = sim.connection_stats(mp).subflows[0].delivered_pkts;
    sim.stop_connection(tops[0]);
    // First 10 seconds after the change: MPTCP should already be taking a
    // large share of the freed capacity.
    sim.run_until(SimTime::from_secs(70));
    let after = sim.connection_stats(mp).subflows[0].delivered_pkts;
    let rate = (after - before) as f64 / 10.0;
    assert!(
        rate > 0.5 * 500.0,
        "MPTCP should claim most of its fair share within 10 s: {rate:.0} pkt/s of 500"
    );
}
