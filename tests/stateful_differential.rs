//! Stateful-vs-pure differential: a pure paper rule driven through the
//! stateful driver arm (via the float-exact
//! [`PureAdapter`](mptcp_cc::PureAdapter)) must reproduce the plain pure
//! path's history **bit-for-bit** — same connection-stats digests, same
//! delivered counts, same final windows.
//!
//! This is the property that lets the stateful layer (DESIGN.md §3.2h)
//! coexist with the paper-faithful pure rules: the driver split in
//! `mptcp-netsim`'s ACK path is only safe if the adapter arm performs
//! *precisely* the arithmetic the pure arm performs, in the same order,
//! under loss, RTO, reinjection and fault churn. The scenarios are the
//! chaos suite's: Fig. 8's five-link torus and the §5 dual-homed server,
//! each under a randomized fault schedule.
//!
//! The stateful controllers (CUBIC, OLIA, wVegas — everything
//! [`AlgorithmKind::is_stateful`]) have no pure twin to diff against, so
//! the last property sweeps them for the two guarantees the driver owes
//! them instead: replay determinism (same seeds → bit-identical history)
//! and liveness under fault churn.
//!
//! Case count scales with `MPTCP_CHAOS_CASES` (default 4 so `cargo test`
//! stays quick; the nightly CI job raises it).

use mptcp_cc::{AlgorithmKind, DetDigest};
use mptcp_netsim::{FaultPlan, SimTime, Simulator};
use mptcp_topology::{DualHomedServer, Torus};
use proptest::prelude::*;

const HORIZON: SimTime = SimTime::from_secs(30);

fn chaos_cases() -> u32 {
    std::env::var("MPTCP_CHAOS_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(4)
}

/// Every pure paper rule gets diffed (the stateful zoo has no pure twin).
/// Derived from [`AlgorithmKind::all`] so a new pure kind joins the
/// property automatically.
fn pure_kinds() -> Vec<AlgorithmKind> {
    AlgorithmKind::all().into_iter().filter(|k| !k.is_stateful()).collect()
}

/// Everything a wrapped replay must reproduce. The stats digest covers
/// every `ConnectionStats` field; delivered counts are repeated separately
/// so a mismatch prints something human-readable.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Outcome {
    conn_digests: Vec<u64>,
    delivered: Vec<u64>,
}

fn outcome(sim: &Simulator, conns: &[usize]) -> Outcome {
    Outcome {
        conn_digests: conns.iter().map(|&c| sim.connection_stats(c).digest_value()).collect(),
        delivered: conns.iter().map(|&c| sim.connection_stats(c).data_delivered).collect(),
    }
}

fn run_torus(kind: AlgorithmKind, seed: u64, fault_seed: u64, wrapped: bool) -> Outcome {
    let mut sim = Simulator::new(seed);
    sim.wrap_pure_in_adapter(wrapped);
    let t = Torus::build(&mut sim, [1000.0; 5], kind);
    sim.install_fault_plan(&FaultPlan::randomized(fault_seed, &t.links, HORIZON));
    sim.run_until(HORIZON);
    outcome(&sim, &t.flows)
}

fn run_dual_homed(
    kind: AlgorithmKind,
    seed: u64,
    fault_seed: u64,
    pkts: u64,
    wrapped: bool,
) -> Outcome {
    let mut sim = Simulator::new(seed);
    sim.wrap_pure_in_adapter(wrapped);
    let d = DualHomedServer::build(&mut sim, [12.0, 4.0], SimTime::from_millis(10), 25);
    let mp = d.add_multipath_client(&mut sim, kind, SimTime::ZERO);
    let sp = d.add_single_path_transfer(&mut sim, 1, pkts, SimTime::from_millis(500));
    sim.install_fault_plan(&FaultPlan::randomized(fault_seed, &d.links, HORIZON));
    sim.run_until(HORIZON);
    outcome(&sim, &[mp, sp])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(chaos_cases()))]

    #[test]
    fn torus_history_is_identical_through_the_stateful_driver(
        seed in 1u64..u32::MAX as u64,
        fault_seed in 0u64..u32::MAX as u64,
    ) {
        for kind in pure_kinds() {
            let pure = run_torus(kind, seed, fault_seed, false);
            prop_assert!(
                pure.delivered.iter().sum::<u64>() > 0,
                "degenerate schedule delivered nothing: {pure:?}"
            );
            let wrapped = run_torus(kind, seed, fault_seed, true);
            prop_assert_eq!(
                &pure,
                &wrapped,
                "{:?} diverged behind the adapter on the torus (seed={}, fault_seed={})",
                kind,
                seed,
                fault_seed
            );
        }
    }

    #[test]
    fn dual_homed_history_is_identical_through_the_stateful_driver(
        seed in 1u64..u32::MAX as u64,
        fault_seed in 0u64..u32::MAX as u64,
        pkts in 500u64..4_000,
    ) {
        for kind in pure_kinds() {
            let pure = run_dual_homed(kind, seed, fault_seed, pkts, false);
            let wrapped = run_dual_homed(kind, seed, fault_seed, pkts, true);
            prop_assert_eq!(
                &pure,
                &wrapped,
                "{:?} diverged behind the adapter dual-homed (seed={}, fault_seed={}, pkts={})",
                kind,
                seed,
                fault_seed,
                pkts
            );
        }
    }

    #[test]
    fn stateful_zoo_is_deterministic_and_live_under_fault_churn(
        seed in 1u64..u32::MAX as u64,
        fault_seed in 0u64..u32::MAX as u64,
    ) {
        for kind in AlgorithmKind::all().into_iter().filter(|k| k.is_stateful()) {
            let first = run_torus(kind, seed, fault_seed, false);
            let again = run_torus(kind, seed, fault_seed, false);
            prop_assert_eq!(
                &first,
                &again,
                "{:?} replayed nondeterministically (seed={}, fault_seed={})",
                kind,
                seed,
                fault_seed
            );
            prop_assert!(
                first.delivered.iter().sum::<u64>() > 0,
                "{kind:?} delivered nothing under fault churn: {first:?}"
            );
        }
    }
}
