//! Acceptance scenario for the fault subsystem: a mid-transfer WiFi
//! blackout on the §5 dual-homed client (WiFi ≈14.4 Mb/s + 3G ≈2.1 Mb/s).
//!
//! A sized MPTCP transfer is cut off from WiFi between t = 10 s and
//! t = 25 s by a scripted [`FaultPlan`]. The connection must:
//!
//! * declare the WiFi subflow potentially failed and reinject its
//!   stranded packets onto 3G (`reinjections_sent > 0`);
//! * keep data-level goodput during the outage at (most of) the surviving
//!   3G path's capacity;
//! * finish the transfer with exactly-once delivery — every packet
//!   delivered and acknowledged once, duplicate arrivals (the cost of
//!   reinjection) discarded and counted separately;
//! * reproduce the entire history bit-identically on a re-run.

use mptcp_cc::AlgorithmKind;
use mptcp_netsim::{ConnectionSpec, FaultPlan, SimTime, Simulator, TcpParams};
use mptcp_topology::WirelessClient;

const SIZE_PKTS: u64 = 25_000;
const OUTAGE_FROM: SimTime = SimTime::from_secs(10);
const OUTAGE_UNTIL: SimTime = SimTime::from_secs(25);
const HORIZON: SimTime = SimTime::from_secs(120);

struct Outcome {
    events: u64,
    finished_at: Option<SimTime>,
    data_delivered: u64,
    data_acked: u64,
    data_sent: u64,
    dup_data_arrivals: u64,
    reinjections_sent: u64,
    outage_goodput_bps: f64,
    wifi_failed_mid_outage: bool,
}

fn run_wifi_blackout(seed: u64) -> Outcome {
    let mut sim = Simulator::new(seed);
    let w = WirelessClient::build_wifi_3g(&mut sim);
    let conn = sim.add_connection(
        ConnectionSpec::sized(AlgorithmKind::Mptcp, SIZE_PKTS)
            .path(vec![w.link1])
            .path(vec![w.link2])
            // A mobile client retries briskly; the default 60 s RTO cap
            // would otherwise dominate recovery after a 15 s blackout.
            .tcp(TcpParams { max_rto: SimTime::from_secs(4), ..TcpParams::default() }),
    );
    sim.install_fault_plan(&FaultPlan::new().outage(w.link1, OUTAGE_FROM, OUTAGE_UNTIL));

    sim.run_until(OUTAGE_FROM);
    let at_start = sim.connection_stats(conn).data_delivered;
    // Mid-outage: WiFi has been dark for 10 s — long past the RTO-backoff
    // threshold that declares it potentially failed.
    sim.run_until(SimTime::from_secs(20));
    let wifi_failed_mid_outage = sim.connection_stats(conn).subflows[0].potentially_failed;
    sim.run_until(OUTAGE_UNTIL);
    let at_end = sim.connection_stats(conn).data_delivered;
    sim.run_until(HORIZON);

    let st = sim.connection_stats(conn);
    let outage_secs = OUTAGE_UNTIL.saturating_sub(OUTAGE_FROM).as_secs_f64();
    Outcome {
        events: sim.events_processed(),
        finished_at: st.finished_at,
        data_delivered: st.data_delivered,
        data_acked: st.data_acked,
        data_sent: st.data_sent,
        dup_data_arrivals: st.dup_data_arrivals,
        reinjections_sent: st.reinjections_sent,
        outage_goodput_bps: (at_end - at_start) as f64 * st.packet_size as f64 * 8.0
            / outage_secs,
        wifi_failed_mid_outage,
    }
}

#[test]
fn wifi_blackout_is_survived_exactly_once() {
    let o = run_wifi_blackout(4242);
    let done = o.finished_at.expect("transfer must complete despite the 15 s WiFi blackout");
    assert!(
        done > OUTAGE_UNTIL && done < HORIZON,
        "completion should land after the outage, well before the horizon: {done:?}"
    );
    assert_eq!(o.data_sent, SIZE_PKTS, "each packet assigned one data sequence number");
    assert_eq!(o.data_delivered, SIZE_PKTS, "zero duplicate deliveries at the data level");
    assert_eq!(o.data_acked, SIZE_PKTS, "each packet acknowledged exactly once");
    assert!(o.wifi_failed_mid_outage, "WiFi subflow must be declared potentially failed");
    assert!(
        o.reinjections_sent > 0,
        "packets stranded on the dead WiFi subflow must be reinjected on 3G"
    );
    assert!(
        o.dup_data_arrivals <= o.reinjections_sent,
        "duplicates ({}) can only come from reinjected copies ({})",
        o.dup_data_arrivals,
        o.reinjections_sent
    );
}

#[test]
fn goodput_during_outage_tracks_the_surviving_3g_path() {
    let o = run_wifi_blackout(4242);
    // 3G is ≈2.1 Mb/s; demand at least 75% of it — the transfer must keep
    // riding the surviving path, not stall waiting for WiFi.
    let floor = 0.75 * 2.1e6;
    assert!(
        o.outage_goodput_bps >= floor,
        "goodput during the WiFi outage fell to {:.2} Mb/s (< {:.2} Mb/s)",
        o.outage_goodput_bps / 1e6,
        floor / 1e6
    );
}

#[test]
fn blackout_scenario_is_bit_reproducible() {
    let a = run_wifi_blackout(77);
    let b = run_wifi_blackout(77);
    assert_eq!(a.events, b.events);
    assert_eq!(a.finished_at, b.finished_at);
    assert_eq!(a.data_delivered, b.data_delivered);
    assert_eq!(a.dup_data_arrivals, b.dup_data_arrivals);
    assert_eq!(a.reinjections_sent, b.reinjections_sent);
    assert_eq!(a.outage_goodput_bps.to_bits(), b.outage_goodput_bps.to_bits());
}
