//! The fluid-model differential oracle as a tier-1 test: for every cell
//! in `mptcp_bench::oracle::checked_cells` (the paper's five core
//! algorithms on all three scenarios, plus OLIA and BALIA on the
//! Bernoulli-loss scenarios their derivations assume), the packet-level
//! simulator's time-averaged equilibrium windows must agree with the
//! fluid balance-equation prediction computed from the *measured* loss
//! rates and RTTs — within the tolerances documented in
//! `mptcp_bench::oracle`.
//!
//! The negative test at the bottom is as important as the positive ones:
//! it perturbs the model the oracle predicts with and demands a FAILURE,
//! proving the tolerances are tight enough to catch a misscaled increase
//! rule (the implementation-drift bug class this oracle exists for).

use mptcp_bench::oracle::{
    checked_cells, fluid_check, fluid_check_with_model, OracleReport, ScaledIncrease, Scenario,
};
use mptcp_cc::AlgorithmKind;

fn assert_all_pass(scenario: Scenario) {
    let mut failures: Vec<OracleReport> = Vec::new();
    for (kind, s) in checked_cells() {
        if s != scenario {
            continue;
        }
        let report = fluid_check(kind, scenario);
        print!("{report}");
        if !report.pass {
            failures.push(report);
        }
    }
    assert!(
        failures.is_empty(),
        "fluid oracle disagreements on {}:\n{}",
        scenario.name(),
        failures.iter().map(ToString::to_string).collect::<String>()
    );
}

#[test]
fn oracle_agrees_on_two_equal_paths() {
    assert_all_pass(Scenario::TwoPath);
}

#[test]
fn oracle_agrees_under_rtt_mismatch() {
    assert_all_pass(Scenario::RttMismatch);
}

#[test]
fn oracle_agrees_on_the_fig7_torus() {
    assert_all_pass(Scenario::Torus);
}

/// A 3× more aggressive increase rule predicts windows ~√3 larger, far
/// outside tolerance: the oracle must flag the drift, on the scenario with
/// the *loosest* tolerances, for the paper's final algorithm.
#[test]
fn oracle_flags_a_perturbed_model() {
    let perturbed = ScaledIncrease::new(AlgorithmKind::Mptcp.build(2), 3.0);
    let report =
        fluid_check_with_model(AlgorithmKind::Mptcp, Scenario::Torus, &perturbed);
    print!("{report}");
    assert!(
        !report.pass,
        "a 3x-scaled increase rule must not slip through the oracle:\n{report}"
    );
}
