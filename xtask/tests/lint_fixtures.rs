//! Linter self-tests: the fixture corpus (one deliberately-bad and one
//! good file per rule), the annotation audit over the real tree, and a
//! clean-workspace gate — `cargo test -p xtask` failing is the first sign
//! that either the linter regressed or the tree picked up a violation.

use std::path::{Path, PathBuf};
use xtask::{audit_allows, find_workspace_root, lint_group, lint_workspace, FileInput, Finding, Rule, Scope};

fn fixture(name: &str) -> FileInput {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    FileInput {
        source: std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
        path: PathBuf::from(name),
        // Fixtures model simulation library code, the strictest scope.
        scope: Scope::Sim,
    }
}

fn lint_one(name: &str) -> Vec<Finding> {
    lint_group(&[fixture(name)])
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn every_bad_fixture_fails_with_its_rule() {
    for (name, rule, at_least) in [
        ("unordered_iter_bad.rs", Rule::UnorderedIter, 3), // HashMap x2 + HashSet (+ use)
        ("wall_clock_bad.rs", Rule::WallClock, 4),         // Instant::now, SystemTime, thread_rng, RandomState
        ("float_ord_bad.rs", Rule::FloatOrd, 3),           // partial_cmp, == literal, f32
        ("digest_surface_bad.rs", Rule::DigestSurface, 1),
        ("hot_path_bad.rs", Rule::HotPath, 3), // use BTreeMap+BTreeSet, 2 field types, insert/remove sites
        ("shard_safety_bad.rs", Rule::ShardSafety, 4), // use Rc + use RefCell, thread_local!, field types
    ] {
        let findings = lint_one(name);
        assert!(!findings.is_empty(), "{name} must fail");
        let hits = findings.iter().filter(|f| f.rule == rule).count();
        assert!(hits >= at_least, "{name}: wanted ≥{at_least} {} findings, got {findings:#?}", rule.name());
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{name}: only {} findings expected, got {findings:#?}",
            rule.name()
        );
    }
}

#[test]
fn every_good_fixture_passes_clean() {
    for name in [
        "unordered_iter_good.rs",
        "wall_clock_good.rs",
        "float_ord_good.rs",
        "digest_surface_good.rs",
        "hot_path_good.rs",
        "shard_safety_good.rs",
    ] {
        let findings = lint_one(name);
        assert!(findings.is_empty(), "{name} must be clean, got {findings:#?}");
    }
}

#[test]
fn annotation_meta_rules_catch_every_way_an_allow_rots() {
    let findings = lint_one("annotations_bad.rs");
    let rs = rules(&findings);
    assert_eq!(
        rs.iter().filter(|r| **r == Rule::BadAnnotation).count(),
        3,
        "unknown rule + empty reason + missing reason clause: {findings:#?}"
    );
    assert_eq!(rs.iter().filter(|r| **r == Rule::UnusedAllow).count(), 1, "{findings:#?}");
    // The empty-reason allow must NOT shield the Instant::now under it.
    assert_eq!(rs.iter().filter(|r| **r == Rule::WallClock).count(), 1, "{findings:#?}");
}

#[test]
fn fix_suggestions_rewrite_the_mechanical_cases() {
    let findings = lint_one("unordered_iter_bad.rs");
    let fixed = xtask::mechanical_fix(&findings[0]).expect("HashMap rewrite");
    assert!(fixed.1.contains("BTreeMap") || fixed.1.contains("BTreeSet"), "{fixed:?}");
    let findings = lint_one("float_ord_bad.rs");
    let pc = findings.iter().find(|f| f.snippet.contains("partial_cmp")).unwrap();
    let (before, after) = xtask::mechanical_fix(pc).expect("partial_cmp rewrite");
    assert!(before.contains(".partial_cmp(") && after.contains(".total_cmp("));
    assert!(!after.contains(".unwrap()"), "total_cmp returns Ordering directly: {after}");
}

fn repo_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn real_tree_allows_all_name_existing_rules_with_nonempty_reasons() {
    let (allows, bad) = audit_allows(&repo_root()).expect("walk workspace");
    assert!(bad.is_empty(), "malformed annotations in the tree: {bad:#?}");
    for (path, a) in &allows {
        // Well-formed by construction; assert the invariants anyway so the
        // test documents them.
        assert!(Rule::from_name(a.rule.name()).is_some(), "{}: {:?}", path.display(), a);
        assert!(!a.reason.trim().is_empty(), "{}: empty reason", path.display());
    }
    // The single audited entropy site must exist and be annotated.
    assert!(
        allows.iter().any(|(p, a)| {
            p.ends_with("crates/netsim/src/perf.rs") && a.rule == Rule::WallClock
        }),
        "the wall_clock() helper's allow-annotation is gone: {allows:#?}"
    );
}

#[test]
fn cli_exit_codes_match_the_ci_contract() {
    // 0 on the (clean) workspace, non-zero on each bad fixture — the
    // contract the CI `lint` job relies on.
    let bin = env!("CARGO_BIN_EXE_xtask");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .args(args)
            .current_dir(repo_root())
            .output()
            .expect("spawn xtask")
    };
    assert!(run(&["lint"]).status.success(), "workspace must be clean");
    for name in [
        "unordered_iter_bad.rs",
        "wall_clock_bad.rs",
        "float_ord_bad.rs",
        "digest_surface_bad.rs",
        "hot_path_bad.rs",
        "shard_safety_bad.rs",
        "annotations_bad.rs",
    ] {
        let out = run(&["lint", fixtures.join(name).to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(1), "{name} must exit 1");
    }
    for name in [
        "unordered_iter_good.rs",
        "wall_clock_good.rs",
        "float_ord_good.rs",
        "digest_surface_good.rs",
        "hot_path_good.rs",
        "shard_safety_good.rs",
    ] {
        let out = run(&["lint", fixtures.join(name).to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{name} must exit 0");
    }
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2), "unknown subcommand is a usage error");
}

#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(&repo_root()).expect("walk workspace");
    assert!(findings.is_empty(), "`cargo xtask lint` would fail:\n{findings:#?}");
}

#[test]
fn hot_path_rule_is_live_on_the_real_scoreboard_files() {
    // The files that replaced the BTreeSet bookkeeping must carry the
    // marker, be clean, and actually be protected: a tree sneaking back in
    // must be flagged.
    let root = repo_root();
    for rel in ["crates/netsim/src/scoreboard.rs", "crates/netsim/src/tcp.rs"] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(
            src.lines().any(|l| l.trim_start().starts_with("// lint:hot-path")),
            "{rel}: hot-path marker is gone"
        );
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        let poisoned =
            format!("{src}\nfn sneaky(s: &std::collections::BTreeSet<u64>) -> usize {{ s.len() }}\n");
        let findings = lint(poisoned);
        assert!(
            findings.iter().any(|f| f.rule == Rule::HotPath),
            "{rel}: marker not live, a reintroduced tree went unflagged: {findings:#?}"
        );
    }
}

#[test]
fn shard_safety_rule_is_live_on_the_real_shard_state_files() {
    // The files holding per-shard simulator state must carry the marker,
    // be clean, and actually be protected: a non-Send cell sneaking back
    // in must be flagged.
    let root = repo_root();
    for rel in [
        "crates/netsim/src/sim.rs",
        "crates/netsim/src/tcp.rs",
        "crates/netsim/src/link.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(
            src.lines().any(|l| l.trim_start().starts_with("// lint:shard-state")),
            "{rel}: shard-state marker is gone"
        );
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        let poisoned =
            format!("{src}\nfn sneaky(c: &std::cell::RefCell<u64>) -> u64 {{ *c.borrow() }}\n");
        let findings = lint(poisoned);
        assert!(
            findings.iter().any(|f| f.rule == Rule::ShardSafety),
            "{rel}: marker not live, a reintroduced RefCell went unflagged: {findings:#?}"
        );
    }
}

#[test]
fn digest_surface_rule_is_live_on_the_real_netsim_stats_file() {
    // Prove the marker in crates/netsim/src/stats.rs is actually
    // recognized: strip the impl_det_digest! invocations and the linter
    // must start complaining about the real structs.
    let root = repo_root();
    let src = std::fs::read_to_string(root.join("crates/netsim/src/stats.rs")).unwrap();
    let gutted: String = src
        .lines()
        .map(|l| if l.contains("impl_det_digest!") { "// gutted" } else { l })
        .collect::<Vec<_>>()
        .join("\n");
    let findings = lint_group(&[FileInput {
        path: PathBuf::from("crates/netsim/src/stats.rs"),
        source: gutted,
        scope: Scope::Sim,
    }]);
    let names: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::DigestSurface)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        names.iter().any(|m| m.contains("SubflowStats"))
            && names.iter().any(|m| m.contains("ConnectionStats")),
        "expected both stats structs flagged once impls are gone: {findings:#?}"
    );
}
