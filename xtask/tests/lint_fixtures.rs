//! Linter self-tests: the fixture corpus (one deliberately-bad and one
//! good file per rule), the annotation audit over the real tree, and a
//! clean-workspace gate — `cargo test -p xtask` failing is the first sign
//! that either the linter regressed or the tree picked up a violation.

use std::path::{Path, PathBuf};
use xtask::{
    audit_allows, find_workspace_root, findings_from_json, findings_to_json, lint_group,
    lint_workspace, FileInput, Finding, Rule, Scope,
};

fn fixture(name: &str) -> FileInput {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    FileInput {
        source: std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display())),
        path: PathBuf::from(name),
        // Fixtures model simulation library code, the strictest scope.
        scope: Scope::Sim,
    }
}

fn lint_one(name: &str) -> Vec<Finding> {
    lint_group(&[fixture(name)])
}

fn rules(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn every_bad_fixture_fails_with_its_rule() {
    for (name, rule, at_least) in [
        ("unordered_iter_bad.rs", Rule::UnorderedIter, 3), // HashMap x2 + HashSet (+ use)
        ("wall_clock_bad.rs", Rule::WallClock, 4),         // Instant::now, SystemTime, thread_rng, RandomState
        ("float_ord_bad.rs", Rule::FloatOrd, 3),           // partial_cmp, == literal, f32
        ("digest_surface_bad.rs", Rule::DigestSurface, 1),
        ("hot_path_bad.rs", Rule::HotPath, 3), // use BTreeMap+BTreeSet, 2 field types, insert/remove sites
        ("shard_safety_bad.rs", Rule::ShardSafety, 4), // use Rc + use RefCell, thread_local!, field types
        ("panic_free_bad.rs", Rule::PanicFree, 5), // unwrap, expect, indexing, panic!, unreachable!
        ("exhaustive_match_bad.rs", Rule::ExhaustiveMatch, 2), // `_` arm + binding arm
        ("cast_audit_bad.rs", Rule::CastAudit, 4), // 3 narrowing + 1 float→int
        ("hot_alloc_bad.rs", Rule::HotAlloc, 4), // Box::new, vec!, .to_vec(), .clone()
    ] {
        let findings = lint_one(name);
        assert!(!findings.is_empty(), "{name} must fail");
        let hits = findings.iter().filter(|f| f.rule == rule).count();
        assert!(hits >= at_least, "{name}: wanted ≥{at_least} {} findings, got {findings:#?}", rule.name());
        assert!(
            findings.iter().all(|f| f.rule == rule),
            "{name}: only {} findings expected, got {findings:#?}",
            rule.name()
        );
    }
}

#[test]
fn every_good_fixture_passes_clean() {
    for name in [
        "unordered_iter_good.rs",
        "wall_clock_good.rs",
        "float_ord_good.rs",
        "digest_surface_good.rs",
        "hot_path_good.rs",
        "shard_safety_good.rs",
        "panic_free_good.rs",
        "exhaustive_match_good.rs",
        "cast_audit_good.rs",
        "hot_alloc_good.rs",
    ] {
        let findings = lint_one(name);
        assert!(findings.is_empty(), "{name} must be clean, got {findings:#?}");
    }
}

#[test]
fn annotation_meta_rules_catch_every_way_an_allow_rots() {
    let findings = lint_one("annotations_bad.rs");
    let rs = rules(&findings);
    assert_eq!(
        rs.iter().filter(|r| **r == Rule::BadAnnotation).count(),
        3,
        "unknown rule + empty reason + missing reason clause: {findings:#?}"
    );
    assert_eq!(rs.iter().filter(|r| **r == Rule::UnusedAllow).count(), 1, "{findings:#?}");
    // The empty-reason allow must NOT shield the Instant::now under it.
    assert_eq!(rs.iter().filter(|r| **r == Rule::WallClock).count(), 1, "{findings:#?}");
}

#[test]
fn fix_suggestions_rewrite_the_mechanical_cases() {
    let findings = lint_one("unordered_iter_bad.rs");
    let fixed = xtask::mechanical_fix(&findings[0]).expect("HashMap rewrite");
    assert!(fixed.1.contains("BTreeMap") || fixed.1.contains("BTreeSet"), "{fixed:?}");
    let findings = lint_one("float_ord_bad.rs");
    let pc = findings.iter().find(|f| f.snippet.contains("partial_cmp")).unwrap();
    let (before, after) = xtask::mechanical_fix(pc).expect("partial_cmp rewrite");
    assert!(before.contains(".partial_cmp(") && after.contains(".total_cmp("));
    assert!(!after.contains(".unwrap()"), "total_cmp returns Ordering directly: {after}");
}

fn repo_root() -> PathBuf {
    find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR"))).expect("workspace root")
}

#[test]
fn real_tree_allows_all_name_existing_rules_with_nonempty_reasons() {
    let (allows, bad) = audit_allows(&repo_root()).expect("walk workspace");
    assert!(bad.is_empty(), "malformed annotations in the tree: {bad:#?}");
    for (path, a) in &allows {
        // Well-formed by construction; assert the invariants anyway so the
        // test documents them.
        assert!(Rule::from_name(a.rule.name()).is_some(), "{}: {:?}", path.display(), a);
        assert!(!a.reason.trim().is_empty(), "{}: empty reason", path.display());
    }
    // The single audited entropy site must exist and be annotated.
    assert!(
        allows.iter().any(|(p, a)| {
            p.ends_with("crates/netsim/src/perf.rs") && a.rule == Rule::WallClock
        }),
        "the wall_clock() helper's allow-annotation is gone: {allows:#?}"
    );
}

#[test]
fn cli_exit_codes_match_the_ci_contract() {
    // 0 on the (clean) workspace, non-zero on each bad fixture — the
    // contract the CI `lint` job relies on.
    let bin = env!("CARGO_BIN_EXE_xtask");
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let run = |args: &[&str]| {
        std::process::Command::new(bin)
            .args(args)
            .current_dir(repo_root())
            .output()
            .expect("spawn xtask")
    };
    assert!(run(&["lint"]).status.success(), "workspace must be clean");
    for name in [
        "unordered_iter_bad.rs",
        "wall_clock_bad.rs",
        "float_ord_bad.rs",
        "digest_surface_bad.rs",
        "hot_path_bad.rs",
        "shard_safety_bad.rs",
        "panic_free_bad.rs",
        "cast_audit_bad.rs",
        "hot_alloc_bad.rs",
        "annotations_bad.rs",
    ] {
        let out = run(&["lint", fixtures.join(name).to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(1), "{name} must exit 1");
    }
    // D8 exempts `tests/` trees by path (wildcards are fine in test
    // code), so its CLI exit code needs the fixture staged outside one.
    let staged = std::env::temp_dir().join("xtask_exhaustive_match_bad.rs");
    std::fs::copy(fixtures.join("exhaustive_match_bad.rs"), &staged).expect("stage fixture");
    let out = run(&["lint", staged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "exhaustive_match_bad must exit 1 outside tests/");
    let out = run(&["lint", fixtures.join("exhaustive_match_bad.rs").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "…and be exempt inside the tests/ tree");
    std::fs::remove_file(&staged).ok();
    for name in [
        "unordered_iter_good.rs",
        "wall_clock_good.rs",
        "float_ord_good.rs",
        "digest_surface_good.rs",
        "hot_path_good.rs",
        "shard_safety_good.rs",
        "panic_free_good.rs",
        "cast_audit_good.rs",
        "hot_alloc_good.rs",
    ] {
        let out = run(&["lint", fixtures.join(name).to_str().unwrap()]);
        assert_eq!(out.status.code(), Some(0), "{name} must exit 0");
    }
    // The good D8 fixture also needs staging: inside tests/ the rule is
    // exempt, so its demonstration allow would read as unused.
    let staged = std::env::temp_dir().join("xtask_exhaustive_match_good.rs");
    std::fs::copy(fixtures.join("exhaustive_match_good.rs"), &staged).expect("stage fixture");
    let out = run(&["lint", staged.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0), "exhaustive_match_good must exit 0");
    std::fs::remove_file(&staged).ok();
    // `--format json` keeps the same exit contract and emits parseable
    // machine output in both directions.
    let out = run(&["lint", "--format", "json", fixtures.join("panic_free_bad.rs").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "json format must not change the exit code");
    let parsed = findings_from_json(&String::from_utf8_lossy(&out.stdout)).expect("parse CLI json");
    assert!(parsed.iter().all(|f| f.rule == Rule::PanicFree), "{parsed:#?}");
    let out = run(&["lint", "--format", "json"]);
    assert!(out.status.success(), "clean workspace must exit 0 under --format json");
    assert!(
        findings_from_json(&String::from_utf8_lossy(&out.stdout)).expect("parse").is_empty(),
        "clean workspace emits an empty findings array"
    );
    let out = run(&["lint", "--format", "github", fixtures.join("cast_audit_bad.rs").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stdout).lines().any(|l| l.starts_with("::error ")),
        "github format must emit workflow commands"
    );
    assert_eq!(
        run(&["lint", "--format", "yaml"]).status.code(),
        Some(2),
        "unknown format is a usage error"
    );
    assert_eq!(run(&["frobnicate"]).status.code(), Some(2), "unknown subcommand is a usage error");
}

#[test]
fn workspace_is_lint_clean() {
    let findings = lint_workspace(&repo_root()).expect("walk workspace");
    assert!(findings.is_empty(), "`cargo xtask lint` would fail:\n{findings:#?}");
}

#[test]
fn hot_path_rule_is_live_on_the_real_scoreboard_files() {
    // The files that replaced the BTreeSet bookkeeping must carry the
    // marker, be clean, and actually be protected: a tree sneaking back in
    // must be flagged.
    let root = repo_root();
    for rel in ["crates/netsim/src/scoreboard.rs", "crates/netsim/src/tcp.rs"] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(
            src.lines().any(|l| l.trim_start().starts_with("// lint:hot-path")),
            "{rel}: hot-path marker is gone"
        );
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        let poisoned =
            format!("{src}\nfn sneaky(s: &std::collections::BTreeSet<u64>) -> usize {{ s.len() }}\n");
        let findings = lint(poisoned);
        assert!(
            findings.iter().any(|f| f.rule == Rule::HotPath),
            "{rel}: marker not live, a reintroduced tree went unflagged: {findings:#?}"
        );
    }
}

#[test]
fn shard_safety_rule_is_live_on_the_real_shard_state_files() {
    // The files holding per-shard simulator state must carry the marker,
    // be clean, and actually be protected: a non-Send cell sneaking back
    // in must be flagged.
    let root = repo_root();
    for rel in [
        "crates/netsim/src/sim.rs",
        "crates/netsim/src/tcp.rs",
        "crates/netsim/src/link.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(
            src.lines().any(|l| l.trim_start().starts_with("// lint:shard-state")),
            "{rel}: shard-state marker is gone"
        );
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        let poisoned =
            format!("{src}\nfn sneaky(c: &std::cell::RefCell<u64>) -> u64 {{ *c.borrow() }}\n");
        let findings = lint(poisoned);
        assert!(
            findings.iter().any(|f| f.rule == Rule::ShardSafety),
            "{rel}: marker not live, a reintroduced RefCell went unflagged: {findings:#?}"
        );
    }
}

#[test]
fn digest_surface_rule_is_live_on_the_real_netsim_stats_file() {
    // Prove the marker in crates/netsim/src/stats.rs is actually
    // recognized: strip the impl_det_digest! invocations and the linter
    // must start complaining about the real structs.
    let root = repo_root();
    let src = std::fs::read_to_string(root.join("crates/netsim/src/stats.rs")).unwrap();
    let gutted: String = src
        .lines()
        .map(|l| if l.contains("impl_det_digest!") { "// gutted" } else { l })
        .collect::<Vec<_>>()
        .join("\n");
    let findings = lint_group(&[FileInput {
        path: PathBuf::from("crates/netsim/src/stats.rs"),
        source: gutted,
        scope: Scope::Sim,
    }]);
    let names: Vec<&str> = findings
        .iter()
        .filter(|f| f.rule == Rule::DigestSurface)
        .map(|f| f.message.as_str())
        .collect();
    assert!(
        names.iter().any(|m| m.contains("SubflowStats"))
            && names.iter().any(|m| m.contains("ConnectionStats")),
        "expected both stats structs flagged once impls are gone: {findings:#?}"
    );
}

#[test]
fn panic_free_rule_is_live_on_the_real_hot_files() {
    // The per-ACK files must carry a marker, be clean, and actually be
    // protected: an unwrap sneaking back in must be flagged.
    let root = repo_root();
    for rel in [
        "crates/netsim/src/tcp.rs",
        "crates/netsim/src/scoreboard.rs",
        "crates/netsim/src/sim.rs",
        "crates/netsim/src/link.rs",
    ] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        let poisoned = format!("{src}\nfn sneaky(x: Option<u64>) -> u64 {{ x.unwrap() }}\n");
        let findings = lint(poisoned);
        assert!(
            findings.iter().any(|f| f.rule == Rule::PanicFree),
            "{rel}: panic-free not live, a reintroduced unwrap went unflagged: {findings:#?}"
        );
    }
}

#[test]
fn exhaustive_match_rule_is_live_on_the_real_enums() {
    // The four enums the repo treats as closed sets must carry the
    // `lint:exhaustive` marker…
    let root = repo_root();
    for (rel, name) in [
        ("crates/core/src/algorithm.rs", "AlgorithmKind"),
        ("crates/core/src/stateful.rs", "CcDriver"),
        ("crates/netsim/src/fault.rs", "FaultAction"),
        ("xtask/src/lints.rs", "Rule"),
    ] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let f = FileInput { path: PathBuf::from(rel), source: src, scope: Scope::Sim };
        let syms = xtask::collect_symbols(&[f]);
        assert!(
            syms.exhaustive_enum_names().iter().any(|n| n == &name),
            "{rel}: `{name}` lost its `lint:exhaustive` marker"
        );
    }
    // …and the rule must actually bite: a wildcard match appended to the
    // defining file gets flagged.
    let src = std::fs::read_to_string(root.join("crates/core/src/algorithm.rs")).unwrap();
    let poisoned = format!(
        "{src}\nfn sneaky(k: AlgorithmKind) -> u32 {{ match k {{ AlgorithmKind::Mptcp => 0, _ => 1 }} }}\n"
    );
    let findings = lint_group(&[FileInput {
        path: PathBuf::from("crates/core/src/algorithm.rs"),
        source: poisoned,
        scope: Scope::Sim,
    }]);
    assert!(
        findings.iter().any(|f| f.rule == Rule::ExhaustiveMatch && f.message.contains("AlgorithmKind")),
        "exhaustive-match not live on AlgorithmKind: {findings:#?}"
    );
}

#[test]
fn cast_audit_rule_is_live_on_the_real_scoreboard() {
    let root = repo_root();
    let rel = "crates/netsim/src/scoreboard.rs";
    let src = std::fs::read_to_string(root.join(rel)).unwrap();
    let poisoned = format!("{src}\nfn sneaky(n: usize) -> u32 {{ n as u32 }}\n");
    let findings = lint_group(&[FileInput {
        path: PathBuf::from(rel),
        source: poisoned,
        scope: Scope::Sim,
    }]);
    assert!(
        findings.iter().any(|f| f.rule == Rule::CastAudit),
        "cast-audit not live, a reintroduced narrowing cast went unflagged: {findings:#?}"
    );
}

#[test]
fn hot_alloc_rule_is_live_on_the_real_hot_files() {
    // The per-ACK files must be clean of hidden allocations and actually
    // be protected: a fresh vec/clone sneaking back in must be flagged.
    let root = repo_root();
    for rel in ["crates/netsim/src/tcp.rs", "crates/netsim/src/scoreboard.rs"] {
        let src = std::fs::read_to_string(root.join(rel)).unwrap();
        let lint = |source: String| {
            lint_group(&[FileInput { path: PathBuf::from(rel), source, scope: Scope::Sim }])
        };
        assert!(lint(src.clone()).is_empty(), "{rel} must be lint-clean");
        for sneak in [
            "fn sneaky_a(xs: &[u64]) -> Vec<u64> { xs.to_vec() }",
            "fn sneaky_b(xs: &Vec<u64>) -> Vec<u64> { xs.clone() }",
            "fn sneaky_c(n: u64) -> Box<u64> { Box::new(n) }",
            "fn sneaky_d(n: usize) -> Vec<u64> { vec![0; n] }",
        ] {
            let findings = lint(format!("{src}\n{sneak}\n"));
            assert!(
                findings.iter().any(|f| f.rule == Rule::HotAlloc),
                "{rel}: hot-alloc not live, `{sneak}` went unflagged: {findings:#?}"
            );
        }
    }
}

#[test]
fn json_report_round_trips_exactly() {
    let findings = lint_one("panic_free_bad.rs");
    assert!(!findings.is_empty());
    let json = findings_to_json(&findings);
    let back = findings_from_json(&json).expect("round-trip parse");
    assert_eq!(findings.len(), back.len());
    for (a, b) in findings.iter().zip(&back) {
        assert_eq!(a.rule, b.rule);
        assert_eq!(a.path, b.path);
        assert_eq!(a.line, b.line);
        assert_eq!(a.message, b.message);
        assert_eq!(a.snippet, b.snippet);
        assert_eq!(a.suggestion, b.suggestion);
    }
    // The parser is strict: a drifted version or an unknown rule name is
    // an error, not a silent skip.
    assert!(findings_from_json(&json.replace("\"version\": 1", "\"version\": 2")).is_err());
    assert!(findings_from_json(&json.replace("panic-free", "panik-free")).is_err());
}

#[test]
fn rules_dump_names_every_rule_in_the_policy() {
    let bin = env!("CARGO_BIN_EXE_xtask");
    let out = std::process::Command::new(bin)
        .args(["lint", "--rules"])
        .current_dir(repo_root())
        .output()
        .expect("spawn xtask");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for rule in Rule::all() {
        assert!(
            text.contains(rule.name()),
            "`lint --rules` no longer documents `{}`",
            rule.name()
        );
    }
}
