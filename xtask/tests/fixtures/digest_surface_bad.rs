//! Deliberately-bad fixture: D4 `digest-surface`.
//! A marked sim-state file with a pub struct that never implements
//! `DetDigest`: its fields silently escape the chaos_smoke bit-identity
//! digest, so a nondeterminism bug in them would go unnoticed.

// lint:digest-surface

/// Per-path reinjection accounting (sim-visible outcome state).
pub struct ReinjectStats {
    pub attempted: u64,
    pub succeeded: u64,
}

impl ReinjectStats {
    pub fn failure_count(&self) -> u64 {
        self.attempted - self.succeeded
    }
}
