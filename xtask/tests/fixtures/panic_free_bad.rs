//! Bad fixture: D7 `panic-free`.
//! A marked hot-path file committing every sin the rule knows: `unwrap`,
//! `expect`, `panic!`, `unreachable!`, and bare slice indexing — five
//! findings, one per panic route onto the per-ACK path.

// lint:hot-path — pretend per-ACK bookkeeping.

pub struct Board {
    words: Vec<u64>,
    srtt: Option<f64>,
}

impl Board {
    pub fn rto(&self) -> f64 {
        self.srtt.unwrap() * 2.0
    }

    pub fn cutoff(&self, ranked: &[u64]) -> u64 {
        ranked.first().copied().expect("caller checked len")
    }

    pub fn word(&self, w: usize) -> u64 {
        self.words[w]
    }

    pub fn classify(&self, kind: u8) -> &'static str {
        match kind {
            0 => "cum",
            1 => "sack",
            2 => panic!("corrupt kind"),
            _ => unreachable!("kinds are 0..=2"),
        }
    }
}
