//! Bad fixture: D9 `cast-audit`.
//! A marked shard-state file full of silent truncation: narrowing `as`
//! casts (usize→u32, u64→u8, usize→i32) and a float→integer `as` — four
//! findings, each a way a clipped value corrupts deterministic state.

// lint:shard-state — pretend per-shard slab bookkeeping.

pub struct Slab {
    entries: Vec<u64>,
}

impl Slab {
    pub fn id_of(&self, idx: usize) -> u32 {
        idx as u32
    }

    pub fn hop_count(&self, raw: u64) -> u8 {
        raw as u8
    }

    pub fn signed_offset(&self) -> i32 {
        self.entries.len() as i32
    }

    pub fn window_packets(&self, cwnd: f64) -> u64 {
        (cwnd * 2.0) as u64
    }
}
