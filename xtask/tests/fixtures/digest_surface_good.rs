//! Good fixture: D4 `digest-surface`.
//! Every pub struct in this marked file either implements `DetDigest`
//! (via the exhaustive-destructuring macro) or is annotated as pure
//! configuration that cannot drift at runtime.

// lint:digest-surface

/// Sim-visible outcome state: digested.
pub struct ReinjectStats {
    pub attempted: u64,
    pub succeeded: u64,
    pub wall_secs: f64,
}

impl_det_digest!(ReinjectStats { attempted, succeeded } skip { wall_secs });

// lint:allow(digest-surface, reason = "pure input configuration, set before the run and never mutated; cannot carry nondeterminism")
pub struct ReinjectConfig {
    pub max_attempts: u32,
}
