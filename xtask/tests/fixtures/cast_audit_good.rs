//! Good fixture: D9 `cast-audit`.
//! The same marked shard-state work done honestly: widening `as` casts
//! (always lossless), `From`/`TryFrom` conversions, and one reasoned
//! allow where truncation is the documented semantics.

// lint:shard-state — pretend per-shard slab bookkeeping.

pub struct Slab {
    entries: Vec<u64>,
}

impl Slab {
    pub fn id_of(&self, idx: u32) -> u64 {
        u64::from(idx)
    }

    pub fn hop_count(&self, raw: u64) -> Option<u8> {
        u8::try_from(raw).ok()
    }

    pub fn slot_seq(&self, idx: usize) -> u64 {
        idx as u64
    }

    pub fn checksum_low_byte(&self, sum: u64) -> u8 {
        // lint:allow(cast-audit, reason = "truncation IS the semantics: the wire format stores only the low 8 bits of the rolling checksum")
        sum as u8
    }
}
