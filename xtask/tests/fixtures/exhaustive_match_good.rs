//! Good fixture: D8 `exhaustive-match`.
//! The same `lint:exhaustive` enum matched exhaustively (including via
//! `Self::` paths), a wildcard over an *unmarked* type (fine — the rule
//! is opt-in per enum), and one reasoned allow where a wildcard really is
//! the intent.

/// Which congestion controller drives a subflow.
// lint:exhaustive
#[derive(Clone, Copy, Debug)]
pub enum Driver {
    Pure,
    Cubic,
    Olia,
    Wvegas,
}

impl Driver {
    pub fn short_name(self) -> &'static str {
        match self {
            Self::Pure => "pure",
            Self::Cubic => "cubic",
            Self::Olia | Self::Wvegas => "coupled",
        }
    }
}

pub fn rto_or_default(srtt: Option<f64>) -> f64 {
    // `Option` is not marked `lint:exhaustive`; wildcards stay legal.
    match srtt {
        Some(s) => s * 2.0,
        _ => 1.0,
    }
}

pub fn is_window_based(d: Driver) -> bool {
    match d {
        Driver::Wvegas => false,
        // lint:allow(exhaustive-match, reason = "every present and future driver except the delay-based wVegas is window-based; a new delay-based one must opt out here explicitly")
        _ => true,
    }
}
