//! Deliberately-bad fixture: D3 `float-ord`.
//! Partial float orderings and exact float equality feeding event order /
//! window arithmetic: NaN panics the unwrap, and `==` against a computed
//! value flips with rounding.

pub fn rank_windows(ws: &mut Vec<f64>) {
    ws.sort_by(|a, b| a.partial_cmp(b).unwrap()); // panics on NaN
}

pub fn is_saturated(cwnd: f64) -> bool {
    cwnd == 64.0 // exact equality on a computed window
}

pub fn precision_loss(srtt: f32) -> f32 {
    srtt * 0.875 // f32 in window arithmetic
}
