//! Good fixture: D3 `float-ord`.
//! Total orderings (`total_cmp`), tolerance comparisons, and one annotated
//! exact zero-guard.

pub fn rank_windows(ws: &mut [f64]) {
    ws.sort_by(|a, b| a.total_cmp(b)); // IEEE 754 total order, NaN-safe
}

pub fn is_saturated(cwnd: f64, limit: f64) -> bool {
    (cwnd - limit).abs() < 1e-9
}

pub fn mean_rate(bytes: f64, secs: f64) -> f64 {
    // lint:allow(float-ord, reason = "exact zero-guard against division by zero; no ordering depends on it")
    if secs == 0.0 {
        return 0.0;
    }
    bytes / secs
}
