//! Deliberately-bad fixture: D6 `shard-safety`.
//! Non-`Send` shared-ownership cells and a thread-pinned static in a file
//! declaring itself shard state — exactly what would either fail the
//! `std::thread::scope` build or smuggle thread-identity into the
//! deterministic history once the shard moves onto a worker thread.

// lint:shard-state — this file models per-shard simulator state.

use std::cell::RefCell;
use std::rc::Rc;

thread_local! {
    static EVENTS_SEEN: RefCell<u64> = RefCell::new(0);
}

pub struct FlowTable {
    shared: Rc<Vec<u64>>,
}

impl FlowTable {
    pub fn bump(&self) {
        EVENTS_SEEN.with(|c| *c.borrow_mut() += self.shared.len() as u64);
    }
}
