//! Bad fixture: D8 `exhaustive-match`.
//! A `lint:exhaustive` enum matched twice with wildcard arms — once with
//! `_`, once with a lowercase binding — so adding a variant would be
//! silently absorbed in both places instead of failing to compile.

/// Which congestion controller drives a subflow.
// lint:exhaustive
#[derive(Clone, Copy, Debug)]
pub enum Driver {
    Pure,
    Cubic,
    Olia,
    Wvegas,
}

pub fn short_name(d: Driver) -> &'static str {
    match d {
        Driver::Pure => "pure",
        Driver::Cubic => "cubic",
        _ => "coupled",
    }
}

pub fn is_coupled(d: Driver) -> bool {
    match d {
        Driver::Pure => false,
        other => matches!(other, Driver::Olia | Driver::Wvegas),
    }
}
