// lint:hot-path
//! D10 bad fixture: every banned allocating call, in non-test code of a
//! hot-path-marked file.

fn per_ack(acked: &[u64], scratch: &Vec<u64>) -> Vec<u64> {
    // A per-event box round-trips the allocator on every ACK.
    let boxed = Box::new(acked.len() as u64);
    // A fresh vector literal allocates its backing storage.
    let fresh = vec![0u64; acked.len()];
    // `.to_vec()` is a hidden allocation plus a copy.
    let copied = acked.to_vec();
    // `.clone()` deep-copies the scratch buffer instead of reusing it.
    let mut out = scratch.clone();
    out.push(*boxed + fresh.len() as u64 + copied.len() as u64);
    out
}
