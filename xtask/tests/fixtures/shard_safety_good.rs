//! Good fixture: D6 `shard-safety`.
//! A marked shard-state file that owns its hot state directly (plain
//! fields and `Vec` arenas are `Send` for free) and shares the read-only
//! routing table as an `Arc`, plus one annotated `Rc` that provably never
//! crosses a thread — the escape hatch in action. An Rc mentioned only in
//! prose like this line is fine: comments are not code.

// lint:shard-state — per-shard simulator state.

use std::sync::Arc;

pub struct Shard {
    now_nanos: u64,
    flows: Vec<u64>,
    routes: Arc<Vec<u32>>,
}

impl Shard {
    pub fn advance(&mut self, to: u64) -> usize {
        self.now_nanos = to;
        self.flows.iter().filter(|&&f| f <= to).count() + self.routes.len()
    }
}

pub fn debug_snapshot(shard: &Shard) -> u64 {
    // lint:allow(shard-safety, reason = "single-threaded debug helper, never handed to a worker")
    let view: std::rc::Rc<u64> = std::rc::Rc::new(shard.now_nanos);
    *view
}
