//! Deliberately-bad fixture: D2 `wall-clock`.
//! Host-clock and OS-entropy reads inside simulation logic: the run is no
//! longer a pure function of the seed.

pub fn jittered_deadline(base_ns: u64) -> u64 {
    let t = std::time::Instant::now(); // host clock in sim logic
    let wall = std::time::SystemTime::now(); // ditto, non-monotonic too
    let mut rng = rand::thread_rng(); // OS-seeded entropy
    let _ = (t, wall);
    base_ns + rng.gen_range(0..100)
}

pub fn seeded_state() -> RandomState {
    RandomState::new() // per-process hasher seed
}
