//! Good fixture: D5 `hot-path`.
//! A marked hot-path file using windowed bitmap state (words indexed by
//! `seq & mask`), plus one annotated tree whose use is provably cold — the
//! escape hatch in action. A BTreeSet mentioned only in prose like this
//! line is fine: comments are not code.

// lint:hot-path — per-ACK scoreboard bookkeeping.

pub struct Bitmap {
    words: Vec<u64>,
    base: u64,
}

impl Bitmap {
    pub fn insert(&mut self, seq: u64) {
        let bit = seq & (self.words.len() as u64 * 64 - 1);
        if let Some(w) = self.words.get_mut((bit / 64) as usize) {
            *w |= 1 << (bit % 64);
        }
    }

    pub fn contains(&self, seq: u64) -> bool {
        let bit = seq & (self.words.len() as u64 * 64 - 1);
        self.words.get((bit / 64) as usize).is_some_and(|w| w & (1 << (bit % 64)) != 0)
    }

    pub fn advance_to(&mut self, cum: u64) {
        self.base = cum;
    }
}

pub fn config_lookup(name: &str) -> Option<u64> {
    // lint:allow(hot-path, reason = "cold path: built once at startup, read outside the ACK loop")
    let table: std::collections::BTreeMap<&str, u64> =
        [("dup_thresh", 3), ("max_sack", 4)].into_iter().collect();
    table.get(name).copied()
}
