//! Good fixture: D10 `hot-alloc`.
//! The same per-ACK work done allocation-free: pooled/reused storage,
//! copies into caller-provided buffers, one reasoned allow on the
//! creation-time site (warm-up allocations are legal and counted), and a
//! `#[cfg(test)]` module where `vec!` is idiomatic and exempt.

// lint:hot-path — pretend per-ACK bookkeeping.

pub struct Ring {
    words: Vec<u64>,
}

impl Ring {
    pub fn with_cap(words: usize) -> Ring {
        // lint:allow(hot-alloc, reason = "creation-time ring storage; steady state reuses it via reset_for_reuse")
        Ring { words: vec![0u64; words] }
    }

    /// Steady-state reset: keeps the backing storage, allocates nothing.
    pub fn reset_for_reuse(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Copy into a caller-provided scratch buffer instead of `.to_vec()`.
    pub fn snapshot_into(&self, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(&self.words);
    }
}

#[cfg(test)]
mod tests {
    use super::Ring;

    #[test]
    fn reset_clears_without_reallocating() {
        let mut r = Ring::with_cap(4);
        let mut snap = vec![1u64; 1].clone();
        r.reset_for_reuse();
        r.snapshot_into(&mut snap);
        assert_eq!(snap, vec![0; 4].to_vec());
    }
}
