//! Deliberately-bad fixture: D5 `hot-path`.
//! Ordered trees in a file declaring itself the per-ACK hot path — each
//! insert/remove pays an allocation plus O(log w) pointer-chasing for
//! ordering the scoreboard access pattern never needs.

// lint:hot-path — this file models SACK bookkeeping on the per-ACK path.

use std::collections::{BTreeMap, BTreeSet};

pub struct Scoreboard {
    sacked: BTreeSet<u64>,
    retx_out: BTreeMap<u64, u64>,
}

impl Scoreboard {
    pub fn sack_one(&mut self, seq: u64) -> bool {
        self.retx_out.remove(&seq);
        self.sacked.insert(seq) // tree insert on every SACKed sequence
    }
}
