//! Deliberately-bad fixture: the annotation meta-rules.
//! Unknown rule names, empty reasons, malformed grammar, and a stale
//! allow — every way an escape hatch can rot.

// lint:allow(no-such-rule, reason = "typo'd rule name")
pub fn a() {}

// lint:allow(wall-clock, reason = "")
pub fn b() -> std::time::Instant {
    std::time::Instant::now()
}

// lint:allow(float-ord)
pub fn c() {}

// lint:allow(unordered-iter, reason = "there is no hash container anywhere near this line")
pub fn d() {}
