//! Good fixture: D2 `wall-clock`.
//! Simulated time comes from `SimTime`; the one wall-clock read is the
//! audited perf-measurement site, annotated with a machine-checked reason.

pub fn deadline(now_ns: u64, delta_ns: u64) -> u64 {
    now_ns + delta_ns // SimTime arithmetic: deterministic
}

/// The audited perf site (mirrors `mptcp_netsim::perf::wall_clock`).
pub fn wall_clock() -> std::time::Instant {
    // lint:allow(wall-clock, reason = "audited perf-measurement site; elapsed wall time never feeds simulation state")
    std::time::Instant::now()
}

pub fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let started = wall_clock(); // routed through the audited helper
    f();
    started.elapsed()
}
