//! Deliberately-bad fixture: D1 `unordered-iter`.
//! Hash containers in simulation library code — iteration order is a
//! function of the per-process `RandomState` seed, so folding one into an
//! ordered sink (the Vec below) diverges across processes.

use std::collections::{HashMap, HashSet};

pub fn per_link_totals(samples: &[(usize, u64)]) -> Vec<(usize, u64)> {
    let mut totals: HashMap<usize, u64> = HashMap::new();
    for &(link, bytes) in samples {
        *totals.entry(link).or_insert(0) += bytes;
    }
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    for (link, bytes) in totals.iter() {
        if seen.insert(*link) {
            out.push((*link, *bytes)); // hash order escapes into the Vec
        }
    }
    out
}
