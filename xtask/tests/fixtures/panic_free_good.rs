//! Good fixture: D7 `panic-free`.
//! A marked hot-path file doing the same work with non-panicking forms,
//! one reasoned allow where the invariant genuinely wants a loud failure,
//! free use of `debug_assert!`, and a `#[cfg(test)]` module where `unwrap`
//! is idiomatic and exempt.

// lint:hot-path — pretend per-ACK bookkeeping.

pub struct Board {
    words: Vec<u64>,
    srtt: Option<f64>,
}

impl Board {
    pub fn rto(&self) -> f64 {
        self.srtt.map_or(1.0, |s| s * 2.0)
    }

    pub fn cutoff(&self, ranked: &[u64]) -> Option<u64> {
        debug_assert!(!ranked.is_empty(), "caller checks len");
        ranked.first().copied()
    }

    pub fn word(&self, w: usize) -> u64 {
        self.words.get(w).copied().unwrap_or(0)
    }

    pub fn word_mut(&mut self, w: usize) -> &mut u64 {
        // lint:allow(panic-free, reason = "w is masked to words.len() by every caller; a miss is a broken ring invariant and must fail loudly")
        &mut self.words[w]
    }
}

#[cfg(test)]
mod tests {
    use super::Board;

    #[test]
    fn cutoff_reads_the_first_rank() {
        let b = Board { words: vec![0; 4], srtt: None };
        assert_eq!(b.cutoff(&[7, 3]).unwrap(), 7);
    }
}
