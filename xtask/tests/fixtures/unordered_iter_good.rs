//! Good fixture: D1 `unordered-iter`.
//! Ordered containers everywhere, plus one annotated hash map whose use is
//! provably order-insensitive (a pure count) — the escape hatch in action.

use std::collections::BTreeMap;

pub fn per_link_totals(samples: &[(usize, u64)]) -> Vec<(usize, u64)> {
    let mut totals: BTreeMap<usize, u64> = BTreeMap::new();
    for &(link, bytes) in samples {
        *totals.entry(link).or_insert(0) += bytes;
    }
    totals.into_iter().collect() // BTreeMap: key order, seed-free
}

pub fn distinct_links(samples: &[(usize, u64)]) -> usize {
    // lint:allow(unordered-iter, reason = "only the cardinality is read; no iteration order can escape")
    let set: std::collections::HashSet<usize> = samples.iter().map(|s| s.0).collect();
    set.len()
}
