//! A small, self-contained Rust lexer.
//!
//! The offline build environment has no `syn`/`proc-macro2`, so the lint
//! pass works on a token stream produced here instead of a full AST. The
//! lexer understands everything that matters for not mis-firing inside
//! non-code text: line/block comments (kept as tokens — the annotation
//! layer reads them), string/char/byte/raw-string literals, lifetimes
//! versus char literals, numeric literals (with float detection), and a
//! handful of multi-character operators (`::`, `==`, `!=`, …) merged so
//! the rule scanners can match on them directly.
//!
//! It does not attempt full fidelity (no interned spans, no nested token
//! trees); every token carries its 1-based source line, which is all the
//! findings need.

/// Token classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`HashMap`, `pub`, `struct`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Integer literal (including hex/oct/bin).
    Int,
    /// Float literal (`1.0`, `1e-9`, `2f64`).
    Float,
    /// String, char, byte or raw-string literal (contents opaque).
    Str,
    /// Operator / punctuation; multi-char operators in
    /// [`MERGED_PUNCT`] arrive as a single token.
    Punct,
    /// `// …` (including `///` and `//!`), text preserved.
    LineComment,
    /// `/* … */` (nesting handled), text preserved.
    BlockComment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Verbatim source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Is this a comment token?
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Multi-character operators merged into single tokens, longest first
/// (maximal munch). Only operators a rule scanner matches on need to be
/// here, plus their longer supersets so `..=` never lexes as `..` `=`.
const MERGED_PUNCT: &[&str] = &["..=", "...", "::", "==", "!=", "<=", ">=", "->", "=>", ".."];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens. Unterminated literals/comments are tolerated
/// (the remainder becomes one token): the linter must degrade gracefully
/// on fixture files that never compile.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Skip shebang.
    if src.starts_with("#!") && !src.starts_with("#![") {
        while i < b.len() && b[i] != '\n' {
            i += 1;
        }
    }

    while i < b.len() {
        let c = b[i];
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::LineComment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            i += 2;
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::BlockComment,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Identifiers — possibly a raw-string/byte-string prefix.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            let ident: String = b[start..i].iter().collect();
            let is_str_prefix = matches!(ident.as_str(), "r" | "b" | "br" | "rb");
            if is_str_prefix && i < b.len() && (b[i] == '"' || b[i] == '#') {
                // Raw (or byte) string: r"…", r#"…"#, br##"…"##.
                let mut hashes = 0usize;
                let mut j = i;
                while j < b.len() && b[j] == '#' {
                    hashes += 1;
                    j += 1;
                }
                if j < b.len() && b[j] == '"' {
                    j += 1;
                    // Scan for `"` followed by `hashes` hashes.
                    'scan: while j < b.len() {
                        if b[j] == '\n' {
                            line += 1;
                        }
                        if b[j] == '"' {
                            let mut k = 0;
                            while k < hashes && j + 1 + k < b.len() && b[j + 1 + k] == '#' {
                                k += 1;
                            }
                            if k == hashes {
                                j += 1 + hashes;
                                break 'scan;
                            }
                        }
                        j += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Str,
                        text: b[start..j].iter().collect(),
                        line: start_line,
                    });
                    i = j;
                    continue;
                }
            }
            if is_str_prefix && i < b.len() && b[i] == '\'' {
                // b'…' byte char.
                let j = scan_quoted(&b, i, &mut line);
                toks.push(Tok {
                    kind: TokKind::Str,
                    text: b[start..j].iter().collect(),
                    line: start_line,
                });
                i = j;
                continue;
            }
            toks.push(Tok { kind: TokKind::Ident, text: ident, line: start_line });
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            // Fractional part: `.` followed by a digit, or a bare trailing
            // `.` that is not `..` and not a method call (`1.max(2)`).
            if i < b.len() && b[i] == '.' {
                let next = b.get(i + 1).copied();
                let fractional = match next {
                    Some(d) if d.is_ascii_digit() => true,
                    Some('.') => false,
                    Some(d) if is_ident_start(d) => false,
                    _ => true, // `1.` at end of expression
                };
                if fractional {
                    i += 1;
                    while i < b.len() && is_ident_continue(b[i]) {
                        i += 1;
                    }
                }
            }
            // Signed exponent (`1e-9`): the alnum scan stops at the sign.
            if i < b.len()
                && (b[i] == '+' || b[i] == '-')
                && b[i - 1].is_ascii_alphabetic()
                && (b[i - 1] == 'e' || b[i - 1] == 'E')
                && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())
            {
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
            }
            let text: String = b[start..i].iter().collect();
            let lower = text.to_ascii_lowercase();
            let hexish = lower.starts_with("0x") || lower.starts_with("0o") || lower.starts_with("0b");
            let is_float = text.contains('.')
                || (!hexish && lower.contains('e') && lower.chars().next().is_some_and(|d| d.is_ascii_digit()))
                || (!hexish && (lower.ends_with("f32") || lower.ends_with("f64")));
            toks.push(Tok {
                kind: if is_float { TokKind::Float } else { TokKind::Int },
                text,
                line: start_line,
            });
            continue;
        }

        // Strings.
        if c == '"' {
            let start = i;
            let j = scan_quoted(&b, i, &mut line);
            toks.push(Tok { kind: TokKind::Str, text: b[start..j].iter().collect(), line: start_line });
            i = j;
            continue;
        }

        // Lifetime vs char literal.
        if c == '\'' {
            let next = b.get(i + 1).copied();
            let after = b.get(i + 2).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(d) if is_ident_start(d) => after == Some('\''),
                Some(_) => true, // '(' etc: a char literal like '(' or ' '
                None => true,
            };
            if is_char {
                let start = i;
                let j = scan_quoted(&b, i, &mut line);
                toks.push(Tok { kind: TokKind::Str, text: b[start..j].iter().collect(), line: start_line });
                i = j;
            } else {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            continue;
        }

        // Punctuation with maximal munch over the merged set.
        let mut matched = false;
        for op in MERGED_PUNCT {
            let n = op.chars().count();
            if i + n <= b.len() && b[i..i + n].iter().collect::<String>() == **op {
                toks.push(Tok { kind: TokKind::Punct, text: (*op).to_string(), line: start_line });
                i += n;
                matched = true;
                break;
            }
        }
        if !matched {
            toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line: start_line });
            i += 1;
        }
    }
    toks
}

/// Scan a `'…'` or `"…"` literal starting at the opening quote at `pos`;
/// returns the index one past the closing quote (or end of input).
fn scan_quoted(b: &[char], pos: usize, line: &mut u32) -> usize {
    let quote = b[pos];
    let mut i = pos + 1;
    while i < b.len() {
        match b[i] {
            '\n' => {
                *line += 1;
                i += 1;
            }
            '\\' => i += 2,
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_strings_and_idents() {
        let t = kinds("let x = \"// not a comment\"; // real\n/* block */ y");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Str && s.contains("not a comment")));
        assert!(t.iter().any(|(k, s)| *k == TokKind::LineComment && s == "// real"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::BlockComment && s == "/* block */"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "y"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'b'; let n = '\\n'; }");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(t.iter().filter(|(k, s)| *k == TokKind::Str && s.starts_with('\'')).count(), 2);
    }

    #[test]
    fn raw_strings_swallow_operators() {
        let t = kinds("let s = r#\"a == 1.0\"#; s != 2.0");
        // The == inside the raw string must not surface as a Punct.
        assert_eq!(t.iter().filter(|(k, s)| *k == TokKind::Punct && s == "==").count(), 0);
        assert_eq!(t.iter().filter(|(k, s)| *k == TokKind::Punct && s == "!=").count(), 1);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Float).count(), 1);
    }

    #[test]
    fn float_forms() {
        for src in ["1.0", "0.5e3", "1e-9", "2f64", "3."] {
            let t = kinds(src);
            assert_eq!(t[0].0, TokKind::Float, "{src}: {t:?}");
        }
        for src in ["1", "0xfe", "1_000", "0b1010"] {
            let t = kinds(src);
            assert_eq!(t[0].0, TokKind::Int, "{src}: {t:?}");
        }
        // Method call on an int literal is not a float.
        let t = kinds("1.max(2)");
        assert_eq!(t[0].0, TokKind::Int);
    }

    #[test]
    fn merged_operators_and_lines() {
        let t = lex("a::b\n== c ..= d");
        assert_eq!(t[1].text, "::");
        assert_eq!(t[1].line, 1);
        let eq = t.iter().find(|x| x.text == "==").unwrap();
        assert_eq!(eq.line, 2);
        assert!(t.iter().any(|x| x.text == "..="));
    }
}
