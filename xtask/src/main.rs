//! `cargo xtask` — workspace automation CLI.
//!
//! ```text
//! cargo xtask lint                      # run the determinism & invariant lints
//! cargo xtask lint --fix                # …and print mechanical rewrite suggestions
//! cargo xtask lint --rules              # describe the rule set
//! cargo xtask bench-check BASELINE.json # BENCH_sim.json perf-regression gate
//! cargo xtask perf-table                # regenerate the README perf table
//! ```
//!
//! Exit status: 0 when clean, 1 when any finding is reported, 2 on usage
//! or I/O errors — so CI can treat the lint like `clippy -D warnings`.

use xtask::{
    compare, find_workspace_root, findings_to_json, github_annotations, lint_workspace,
    mechanical_fix, parse_bench, Finding, Rule,
};

const USAGE: &str = "usage: cargo xtask lint [--fix] [--rules] [--format FMT] [PATH...]
       cargo xtask bench-check BASELINE [CURRENT] [--threshold-pct N] [--strict]
       cargo xtask perf-table [--check]

subcommands:
  lint          run the determinism & invariant lint pass over the workspace
    --fix       additionally print mechanical rewrite suggestions (no files
                are modified)
    --rules     print the rule set and the annotation grammar, then exit
    --format FMT
                output format: text (default), json (versioned findings
                document for CI artifacts), github (::error workflow
                commands for inline PR annotations)
    PATH...     lint only these .rs files, under the strictest (sim library)
                scope — used to try a file or a fixture in isolation
  bench-check   compare the throughput (events/ops per second, per-core) and
                memory (peak RSS) fields of a freshly regenerated
                BENCH_sim.json against a baseline copy
    BASELINE    the committed baseline (e.g. a copy made before re-running
                the benches)
    CURRENT     the fresh file; defaults to BENCH_sim.json at the
                workspace root
    --threshold-pct N
                regression tolerance in percent (default 20)
    --strict    exit 1 on any regression beyond the threshold; also armed
                by MPTCP_BENCH_STRICT=1. Without it the comparison is a
                smoke check: regressions print but the exit code stays 0
                (wall-clock numbers from shared CI machines are noise)
  perf-table    re-render the README's generated performance table (between
                the `<!-- perf-table:begin -->` / `<!-- perf-table:end -->`
                markers) from the scale_sweep and flow_churn records in
                BENCH_sim.json, so the committed table always matches the
                committed baseline
    --check     render without writing; exit 1 if README.md is stale
";

const RULES: &str = "rules (DESIGN.md §3.2d — determinism policy):

  unordered-iter   no HashMap/HashSet in simulation library code
                   (crates/{core,netsim,proto,topology,workload}/src):
                   hash iteration order is seeded per process.
  wall-clock       no Instant::now / SystemTime / thread_rng / RandomState /
                   DefaultHasher anywhere: the single audited entropy site
                   is mptcp_netsim::perf::wall_clock().
  float-ord        no .partial_cmp() call sites (use f64::total_cmp), no
                   ==/!= against float literals, no f32 in sim library code.
  digest-surface   every pub struct in a file marked `// lint:digest-surface`
                   must implement DetDigest (impl_det_digest!), so its state
                   feeds the chaos_smoke bit-identity digest.
  hot-path         no BTreeSet/BTreeMap in a file marked `// lint:hot-path`:
                   those files are the per-ACK path whose ordered-tree
                   bookkeeping was replaced by rotating bitmap scoreboards.
  shard-safety     no Rc/RefCell/thread_local! in a file marked
                   `// lint:shard-state`: that state moves onto worker
                   threads in the sharded engine and must stay Send.
  panic-free       no .unwrap()/.expect() or panic!/unreachable!/todo!/
                   unimplemented! in lint:hot-path / lint:shard-state files,
                   and no slice indexing in lint:hot-path files: a panic on
                   the per-ACK path tears down the whole simulation.
                   assert!/debug_assert! stay legal; #[cfg(test)] is exempt.
  exhaustive-match no _ or binding wildcard arms in matches over enums
                   marked `// lint:exhaustive` (AlgorithmKind, FaultAction,
                   CcDriver, Rule): new variants must fail to compile at
                   every dispatch site. Test code is exempt.
  cast-audit       no narrowing `as` casts (u8/u16/u32/i8/i16/i32) and no
                   float-sourced `as`-to-integer casts in lint:hot-path /
                   lint:shard-state files: route through the checked
                   helpers in crates/netsim/src/cast.rs.
  hot-alloc        no Box::new / vec! / .to_vec() / .clone() in
                   lint:hot-path files: the per-ACK path stays
                   allocation-free via arena/pool recycling (flow_churn
                   asserts hot_allocs is flat); creation-time and
                   counted-growth sites carry explicit allows.
                   #[cfg(test)] is exempt.

meta (not annotatable):

  bad-annotation   a lint: annotation that is malformed, names an unknown
                   rule, or has an empty reason.
  unused-allow     a lint:allow that suppresses nothing.

annotation grammar, on the offending line or alone on the line above it:

  // lint:allow(<rule>, reason = \"<non-empty explanation>\")
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = run(&args);
    std::process::exit(code);
}

fn run(args: &[String]) -> i32 {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("lint") => {}
        Some("bench-check") => {
            return bench_check(&args[1..]);
        }
        Some("perf-table") => {
            return perf_table(&args[1..]);
        }
        Some("-h") | Some("--help") | None => {
            print!("{USAGE}");
            return if args.is_empty() { 2 } else { 0 };
        }
        Some(other) => {
            eprintln!("unknown subcommand `{other}`\n{USAGE}");
            return 2;
        }
    }
    let mut fix = false;
    let mut format = Format::Text;
    let mut paths: Vec<String> = Vec::new();
    while let Some(flag) = it.next() {
        match flag {
            "--fix" => fix = true,
            "--rules" => {
                print!("{RULES}");
                return 0;
            }
            "--format" => {
                format = match it.next() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("github") => Format::Github,
                    Some(other) => {
                        eprintln!("unknown format `{other}` (text, json, github)\n{USAGE}");
                        return 2;
                    }
                    None => {
                        eprintln!("--format needs a value (text, json, github)\n{USAGE}");
                        return 2;
                    }
                };
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            path => paths.push(path.to_string()),
        }
    }

    if !paths.is_empty() {
        return lint_paths(&paths, fix, format);
    }

    let cwd = match std::env::current_dir() {
        Ok(d) => d,
        Err(e) => {
            eprintln!("xtask: cannot read current directory: {e}");
            return 2;
        }
    };
    let root = find_workspace_root(&cwd)
        .or_else(|| find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))))
        .unwrap_or_else(|| {
            eprintln!("xtask: no workspace root found above {}", cwd.display());
            std::process::exit(2);
        });

    let findings = match lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("xtask: I/O error while linting: {e}");
            return 2;
        }
    };
    emit(&findings, format, fix, "workspace clean (0 findings)")
}

/// Output format for lint findings.
#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Json,
    Github,
}

/// Print findings in the selected format; the exit code is the CI
/// contract (0 clean, 1 findings) in every format.
fn emit(findings: &[Finding], format: Format, fix: bool, clean_msg: &str) -> i32 {
    match format {
        Format::Json => {
            // Machine output only — a clean run emits an empty document.
            print!("{}", findings_to_json(findings));
        }
        Format::Github => {
            print!("{}", github_annotations(findings));
            if findings.is_empty() {
                println!("xtask lint: {clean_msg}");
            } else {
                println!("xtask lint: {} finding(s): {}", findings.len(), summarize(findings));
            }
        }
        Format::Text => {
            if findings.is_empty() {
                println!("xtask lint: {clean_msg}");
            } else {
                for f in findings {
                    print_finding(f, fix);
                }
                println!("xtask lint: {} finding(s): {}", findings.len(), summarize(findings));
                println!("  (run `cargo xtask lint --rules` for the policy, `--fix` for rewrite suggestions)");
            }
        }
    }
    if findings.is_empty() {
        0
    } else {
        1
    }
}

/// `cargo xtask bench-check BASELINE [CURRENT] [--threshold-pct N] [--strict]`
/// — see the module docs of `xtask::bench` for the policy.
fn bench_check(args: &[String]) -> i32 {
    let mut strict = std::env::var_os("MPTCP_BENCH_STRICT").is_some_and(|v| v != "0");
    let mut threshold = 0.20;
    let mut paths: Vec<&str> = Vec::new();
    let mut it = args.iter().map(String::as_str);
    while let Some(arg) = it.next() {
        match arg {
            "--strict" => strict = true,
            "--threshold-pct" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    eprintln!("--threshold-pct needs a number\n{USAGE}");
                    return 2;
                };
                threshold = v / 100.0;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag `{other}`\n{USAGE}");
                return 2;
            }
            path => paths.push(path),
        }
    }
    let Some(&baseline_path) = paths.first() else {
        eprintln!("bench-check needs a baseline file\n{USAGE}");
        return 2;
    };
    let current_path = match paths.get(1) {
        Some(&p) => std::path::PathBuf::from(p),
        None => {
            let cwd = std::env::current_dir().unwrap_or_default();
            let root = find_workspace_root(&cwd)
                .or_else(|| find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))));
            match root {
                Some(r) => r.join("BENCH_sim.json"),
                None => {
                    eprintln!("xtask: no workspace root found for the default CURRENT file");
                    return 2;
                }
            }
        }
    };
    if paths.len() > 2 {
        eprintln!("bench-check takes at most two files\n{USAGE}");
        return 2;
    }

    let read = |p: &std::path::Path| match std::fs::read_to_string(p) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("xtask: {}: {e}", p.display());
            None
        }
    };
    let (Some(base_text), Some(cur_text)) =
        (read(std::path::Path::new(baseline_path)), read(&current_path))
    else {
        return 2;
    };
    let (base, cur) = match (parse_bench(&base_text), parse_bench(&cur_text)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("xtask: bench-check parse error: {e}");
            return 2;
        }
    };

    let outcome = compare(&base, &cur);
    let comparisons = outcome.comparisons;
    if comparisons.is_empty() && outcome.skipped.is_empty() {
        eprintln!(
            "xtask bench-check: no overlapping throughput/memory fields between {} and {} — nothing was checked",
            baseline_path,
            current_path.display()
        );
        return 2;
    }
    for note in &outcome.skipped {
        println!("  note: {note}");
    }
    let mut regressed = 0;
    for c in &comparisons {
        let r = c.regression();
        let verdict = if r > threshold {
            regressed += 1;
            "REGRESSED"
        } else if r < 0.0 {
            if c.lower_is_better { "smaller" } else { "faster" }
        } else {
            "ok"
        };
        // The printed delta is the raw value change; `regression()` folds
        // in the direction (memory fields regress on growth).
        println!(
            "  {:<42} {:<26} {:>12.0} -> {:>12.0}  {:+6.1}%  {}",
            c.source,
            c.field,
            c.baseline,
            c.current,
            (c.current / c.baseline - 1.0) * 100.0,
            verdict
        );
    }
    println!(
        "xtask bench-check: {} field(s) compared, {} beyond the {:.0}% threshold{}",
        comparisons.len(),
        regressed,
        threshold * 100.0,
        if strict { " (strict)" } else { " (smoke — informational)" }
    );
    if regressed > 0 && strict {
        return 1;
    }
    0
}

/// `cargo xtask perf-table [--check]` — regenerate (or verify) the
/// README's generated performance table from `BENCH_sim.json`.
fn perf_table(args: &[String]) -> i32 {
    let mut check = false;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return 2;
            }
        }
    }
    let cwd = std::env::current_dir().unwrap_or_default();
    let Some(root) = find_workspace_root(&cwd)
        .or_else(|| find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))))
    else {
        eprintln!("xtask: no workspace root found above {}", cwd.display());
        return 2;
    };
    let bench_path = root.join("BENCH_sim.json");
    let readme_path = root.join("README.md");
    let read = |p: &std::path::Path| match std::fs::read_to_string(p) {
        Ok(t) => Some(t),
        Err(e) => {
            eprintln!("xtask: {}: {e}", p.display());
            None
        }
    };
    let (Some(bench_text), Some(readme)) = (read(&bench_path), read(&readme_path)) else {
        return 2;
    };
    let records = match parse_bench(&bench_text) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("xtask: perf-table parse error: {e}");
            return 2;
        }
    };
    let Some(table) = xtask::perf_table::render(&records) else {
        eprintln!(
            "xtask: {} has no scale_sweep/ or flow_churn/ records — run those benches first",
            bench_path.display()
        );
        return 2;
    };
    let updated = match xtask::perf_table::splice(&readme, &table) {
        Ok(u) => u,
        Err(e) => {
            eprintln!("xtask: perf-table: {e}");
            return 2;
        }
    };
    if updated == readme {
        println!("xtask perf-table: README.md is up to date");
        return 0;
    }
    if check {
        eprintln!("xtask perf-table: README.md is stale — run `cargo xtask perf-table`");
        return 1;
    }
    if let Err(e) = std::fs::write(&readme_path, &updated) {
        eprintln!("xtask: {}: {e}", readme_path.display());
        return 2;
    }
    println!("xtask perf-table: rewrote the generated table in README.md");
    0
}

/// Lint explicitly-given files as one group, under the strictest scope.
fn lint_paths(paths: &[String], fix: bool, format: Format) -> i32 {
    let mut files = Vec::new();
    for p in paths {
        let source = match std::fs::read_to_string(p) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("xtask: {p}: {e}");
                return 2;
            }
        };
        files.push(xtask::FileInput { path: p.into(), source, scope: xtask::Scope::Sim });
    }
    let findings = xtask::lint_group(&files);
    emit(&findings, format, fix, &format!("{} file(s) clean", files.len()))
}

fn print_finding(f: &Finding, fix: bool) {
    println!("error[{}]: {}:{}", f.rule.name(), f.path.display(), f.line);
    println!("  {}", f.message);
    if !f.snippet.is_empty() {
        println!("  --> {}", f.snippet);
    }
    println!("  = help: {}", f.suggestion);
    if fix {
        if let Some((before, after)) = mechanical_fix(f) {
            println!("  = fix:");
            println!("    - {before}");
            println!("    + {after}");
        }
    }
    println!();
}

fn summarize(findings: &[Finding]) -> String {
    let mut counts: Vec<(Rule, usize)> = Vec::new();
    for f in findings {
        match counts.iter_mut().find(|(r, _)| *r == f.rule) {
            Some((_, n)) => *n += 1,
            None => counts.push((f.rule, 1)),
        }
    }
    counts
        .iter()
        .map(|(r, n)| format!("{} x{}", r.name(), n))
        .collect::<Vec<_>>()
        .join(", ")
}
