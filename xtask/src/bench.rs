//! `cargo xtask bench-check` — the performance-regression gate.
//!
//! `BENCH_sim.json` (workspace root) holds one JSON object per line, each
//! with a `"source"` identity and measured fields (see
//! `crates/bench/src/report.rs`, which writes it). This module compares a
//! freshly regenerated file against a committed baseline copy and reports
//! every gated field that regressed by more than the threshold (default
//! 20%): *throughput* fields — named `events_per_sec` or ending in
//! `_per_sec`/`_per_core` (higher is better; the per-core rates keep "add
//! more threads" from masking a serial regression) — and *memory* fields —
//! `peak_rss_bytes` and anything ending in `_rss_bytes` (lower is
//! better).
//!
//! Sources present in only one file are skipped, not failed: a quick CI
//! run regenerates only a subset of benches, and a brand-new bench has no
//! baseline yet. The comparison itself always runs and always prints; the
//! *verdict* has two modes, because wall-clock numbers from a loaded CI
//! box are noise:
//!
//! * default (smoke): regressions are listed but the exit code stays 0 —
//!   CI proves the gate is wired without flaking on machine noise;
//! * strict (`--strict` or `MPTCP_BENCH_STRICT=1`): any regression beyond
//!   the threshold fails — run on the machine that recorded the baseline.
//!
//! Like the report writer, parsing is textual (no JSON parser in the
//! offline workspace): one object per line, `"key":value` pairs.

/// One parsed benchmark record: its source identity and numeric fields.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The `"source"` merge key (e.g. `sim_micro/mptcp4`).
    pub source: String,
    /// Every numeric field, in file order.
    pub fields: Vec<(String, f64)>,
}

impl BenchRecord {
    /// Look up a numeric field by name.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.fields.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
    }
}

/// Parse every record line of a `BENCH_sim.json` body. Lines that are not
/// record objects (the array brackets, blanks) are skipped; a record line
/// that fails to parse is reported by source in the error.
pub fn parse_bench(text: &str) -> Result<Vec<BenchRecord>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"source\":\"") {
            continue;
        }
        let rest = &line["{\"source\":\"".len()..];
        let end = rest.find('"').ok_or_else(|| format!("unterminated source in: {line}"))?;
        let source = rest[..end].to_string();
        let mut fields = Vec::new();
        let mut body = &rest[end + 1..];
        while let Some(q) = body.find(",\"") {
            body = &body[q + 2..];
            let Some(kq) = body.find('"') else { break };
            let key = body[..kq].to_string();
            let Some(colon) = body[kq..].strip_prefix("\":") else {
                return Err(format!("{source}: malformed field after `{key}`"));
            };
            let vend = colon.find([',', '}']).unwrap_or(colon.len());
            // Booleans become 0/1 so flags like `"quick"` are visible to
            // consumers (perf-table's caveat); neither matches the gated
            // `*_per_sec` / `*_rss_bytes` field names, so bench-check
            // never compares them.
            match colon[..vend].trim() {
                "true" => fields.push((key, 1.0)),
                "false" => fields.push((key, 0.0)),
                v => {
                    if let Ok(v) = v.parse::<f64>() {
                        fields.push((key, v));
                    }
                }
            }
            body = colon;
        }
        out.push(BenchRecord { source, fields });
    }
    Ok(out)
}

/// Whether a field is a throughput metric (higher is better) that the
/// regression gate compares. Per-core rates (`*_per_core`) count too, so
/// "add more threads" can't mask a serial regression behind a flat
/// aggregate number.
pub fn is_throughput_field(key: &str) -> bool {
    key == "events_per_sec" || key.ends_with("_per_sec") || key.ends_with("_per_core")
}

/// Whether a field is a memory high-water mark (**lower** is better) that
/// the regression gate compares — `peak_rss_bytes` and friends.
pub fn is_memory_field(key: &str) -> bool {
    key == "peak_rss_bytes" || key.ends_with("_rss_bytes")
}

/// One baseline-vs-current comparison of a gated (throughput or memory)
/// field.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Record source.
    pub source: String,
    /// Field name.
    pub field: String,
    /// Baseline value (events/ops per second, or bytes).
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Direction: true for memory fields (growth is a regression), false
    /// for throughput fields (shrinkage is a regression).
    pub lower_is_better: bool,
}

impl Comparison {
    /// Fractional regression: 0.25 means 25% worse than baseline — slower
    /// for throughput fields, more memory for memory fields. Negative when
    /// the current run improved.
    pub fn regression(&self) -> f64 {
        if self.lower_is_better {
            self.current / self.baseline - 1.0
        } else {
            1.0 - self.current / self.baseline
        }
    }
}

/// The result of [`compare`]: the gated field comparisons plus notes for
/// fields that were deliberately *not* compared (currently: per-core
/// rates across records with different `host_cores`).
#[derive(Debug, Clone, Default)]
pub struct CompareOutcome {
    /// Baseline-vs-current comparisons, in baseline file order.
    pub comparisons: Vec<Comparison>,
    /// One human-readable line per skipped field.
    pub skipped: Vec<String>,
}

/// Compare every throughput and memory field of every source present in
/// **both** files. Returns all comparisons (for the report) in baseline
/// file order. A non-positive baseline value is skipped (e.g. the 0 RSS
/// recorded off Linux — there is nothing to regress against).
///
/// `*_per_core` fields are only meaningful between runs on machines with
/// the same logical-core count: dividing an aggregate rate by `jobs` on a
/// box that cannot actually run `jobs` threads concurrently inflates the
/// per-core number. When both records carry a `host_cores` field and the
/// counts differ, per-core comparisons are skipped and noted instead of
/// reported as (anti-)regressions. Records without `host_cores` (older
/// baselines) are compared as before.
pub fn compare(baseline: &[BenchRecord], current: &[BenchRecord]) -> CompareOutcome {
    let mut out = CompareOutcome::default();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.source == b.source) else {
            continue;
        };
        let cores = (b.get("host_cores"), c.get("host_cores"));
        let cores_differ = matches!(cores, (Some(bc), Some(cc)) if bc != cc);
        for (key, bval) in &b.fields {
            let memory = is_memory_field(key);
            if (!is_throughput_field(key) && !memory) || *bval <= 0.0 {
                continue;
            }
            if cores_differ && key.ends_with("_per_core") {
                out.skipped.push(format!(
                    "{} {}: skipped — baseline ran on {:.0} core(s), current on {:.0}",
                    b.source,
                    key,
                    cores.0.unwrap_or(0.0),
                    cores.1.unwrap_or(0.0),
                ));
                continue;
            }
            if let Some(cval) = c.get(key) {
                out.comparisons.push(Comparison {
                    source: b.source.clone(),
                    field: key.clone(),
                    baseline: *bval,
                    current: cval,
                    lower_is_better: memory,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"[
{"source":"sim_micro/mptcp4","events":14150,"wheel_events_per_sec":6750000.5,"heap_events_per_sec":7250000,"speedup":0.93,"quick":false},
{"source":"sim_micro/probe_guard","probe_overhead":0.044,"disabled_events_per_sec":7690000,"identical_history":true},
{"source":"scale_sweep/fattree_k8","hosts":128,"events_per_sec":5100000,"peak_rss_bytes":8388608}
]"#;

    #[test]
    fn parses_records_and_numeric_fields_only() {
        let recs = parse_bench(SAMPLE).unwrap();
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].source, "sim_micro/mptcp4");
        assert_eq!(recs[0].get("events"), Some(14150.0));
        assert_eq!(recs[0].get("wheel_events_per_sec"), Some(6750000.5));
        // Booleans parse as 0/1 flags (perf-table reads `quick`); their
        // names never match the gated field patterns, so bench-check
        // ignores them.
        assert_eq!(recs[0].get("quick"), Some(0.0));
        assert_eq!(recs[1].get("identical_history"), Some(1.0));
        assert_eq!(recs[2].get("events_per_sec"), Some(5100000.0));
    }

    #[test]
    fn throughput_fields_are_the_per_sec_and_per_core_ones() {
        assert!(is_throughput_field("events_per_sec"));
        assert!(is_throughput_field("wheel_events_per_sec"));
        assert!(is_throughput_field("bitmap_ops_per_sec"));
        assert!(is_throughput_field("events_per_sec_per_core"));
        assert!(!is_throughput_field("probe_overhead"));
        assert!(!is_throughput_field("peak_rss_bytes"));
        assert!(!is_throughput_field("events"));
    }

    #[test]
    fn memory_fields_are_the_rss_ones_and_regress_on_growth() {
        assert!(is_memory_field("peak_rss_bytes"));
        assert!(!is_memory_field("events_per_sec"));
        assert!(!is_memory_field("peak_pending"));
        let grown = Comparison {
            source: "s".into(),
            field: "peak_rss_bytes".into(),
            baseline: 100.0,
            current: 130.0,
            lower_is_better: true,
        };
        assert!((grown.regression() - 0.30).abs() < 1e-12, "30% more memory regresses");
        let shrunk = Comparison { current: 80.0, ..grown };
        assert!(shrunk.regression() < 0.0, "less memory is an improvement");
    }

    #[test]
    fn compare_gates_rss_in_the_right_direction() {
        let base = parse_bench(SAMPLE).unwrap();
        let fresh = parse_bench(
            r#"{"source":"scale_sweep/fattree_k8","events_per_sec":5100000,"peak_rss_bytes":16777216}"#,
        )
        .unwrap();
        let cmp = compare(&base, &fresh).comparisons;
        let rss = cmp.iter().find(|c| c.field == "peak_rss_bytes").expect("rss compared");
        assert!(rss.lower_is_better);
        assert!(rss.regression() > 0.20, "doubled RSS must regress: {rss:?}");
        let eps = cmp.iter().find(|c| c.field == "events_per_sec").unwrap();
        assert!(!eps.lower_is_better);
        assert!(eps.regression().abs() < 1e-12);
    }

    #[test]
    fn compare_matches_sources_and_flags_regressions() {
        let base = parse_bench(SAMPLE).unwrap();
        let fresh = parse_bench(
            r#"{"source":"sim_micro/mptcp4","wheel_events_per_sec":5000000,"heap_events_per_sec":7300000}
{"source":"scale_sweep/fattree_k8","events_per_sec":5200000}
{"source":"new_bench/only_current","events_per_sec":1}"#,
        )
        .unwrap();
        let cmp = compare(&base, &fresh).comparisons;
        // probe_guard is baseline-only, only_current is fresh-only: skipped.
        let sources: Vec<&str> = cmp.iter().map(|c| c.source.as_str()).collect();
        assert!(!sources.contains(&"sim_micro/probe_guard"));
        assert!(!sources.contains(&"new_bench/only_current"));
        let wheel = cmp
            .iter()
            .find(|c| c.field == "wheel_events_per_sec")
            .expect("wheel field compared");
        assert!(wheel.regression() > 0.20, "{:?}", wheel);
        let k8 = cmp.iter().find(|c| c.field == "events_per_sec").unwrap();
        assert!(k8.regression() < 0.0, "faster run is a negative regression");
    }

    #[test]
    fn the_real_checked_in_file_parses_and_self_compares_clean() {
        let root = crate::find_workspace_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
            .expect("workspace root");
        let text = std::fs::read_to_string(root.join("BENCH_sim.json")).expect("BENCH_sim.json");
        let recs = parse_bench(&text).expect("checked-in file parses");
        assert!(!recs.is_empty());
        assert!(
            recs.iter().any(|r| r.fields.iter().any(|(k, _)| is_throughput_field(k))),
            "no throughput fields — the gate would compare nothing"
        );
        // A file compared against itself has zero regression everywhere.
        let cmp = compare(&recs, &recs);
        assert!(!cmp.comparisons.is_empty());
        assert!(cmp.skipped.is_empty(), "self-comparison never differs in core count");
        assert!(cmp.comparisons.iter().all(|c| c.regression().abs() < 1e-12));
    }

    #[test]
    fn per_core_fields_skip_with_note_when_core_counts_differ() {
        let base = parse_bench(
            r#"{"source":"scale_sweep/k32","events_per_sec":2000000,"events_per_sec_per_core":250000,"host_cores":8}"#,
        )
        .unwrap();
        let fresh = parse_bench(
            r#"{"source":"scale_sweep/k32","events_per_sec":2000000,"events_per_sec_per_core":125000,"host_cores":1}"#,
        )
        .unwrap();
        let out = compare(&base, &fresh);
        // The aggregate rate is still gated; the per-core one is noted, not
        // reported as a 50% regression caused by the machine change.
        assert!(out.comparisons.iter().any(|c| c.field == "events_per_sec"));
        assert!(!out.comparisons.iter().any(|c| c.field == "events_per_sec_per_core"));
        assert_eq!(out.skipped.len(), 1);
        assert!(out.skipped[0].contains("events_per_sec_per_core"), "{:?}", out.skipped);
        assert!(out.skipped[0].contains("8 core(s)"), "{:?}", out.skipped);
    }

    #[test]
    fn per_core_fields_compare_when_core_counts_match_or_are_absent() {
        let with_cores =
            r#"{"source":"s","events_per_sec_per_core":250000,"host_cores":8}"#;
        let base = parse_bench(with_cores).unwrap();
        let same = compare(&base, &base);
        assert_eq!(same.comparisons.len(), 1);
        assert!(same.skipped.is_empty());
        // Older baselines without host_cores keep their per-core gate.
        let legacy = parse_bench(r#"{"source":"s","events_per_sec_per_core":250000}"#).unwrap();
        let out = compare(&legacy, &base);
        assert_eq!(out.comparisons.len(), 1);
        assert!(out.skipped.is_empty());
    }
}
