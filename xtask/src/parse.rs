//! A lightweight recursive-descent parse tree over the lexer's tokens.
//!
//! The token-level rules (D1–D6) match on single tokens or short fixed
//! windows; the PR-9 rule families need *structure*: whether a call site
//! sits inside a `#[cfg(test)]` module, which `impl` a `Self::` pattern
//! resolves to, where a `match`'s arms begin and end, what expression a
//! narrowing `as` cast is applied to. This module builds exactly as much
//! of that structure as the rules consume and no more:
//!
//! * **items** — `fn`/`struct`/`enum`/`impl`/`mod`/`trait` nesting, with
//!   `#[cfg(test)]` attributes and `pub` visibility tracked, and the
//!   `// lint:exhaustive` marker attached to the enum it precedes;
//! * **fn bodies** — a flat stream of [`ExprEvent`]s (method calls, macro
//!   calls, index expressions, `as` casts, `match` expressions with
//!   parsed arm patterns), which is the "expression tree" view the D7–D9
//!   scanners walk. Nesting that the rules don't need (operator
//!   precedence, full expression shapes) is deliberately not modeled.
//!
//! Like the lexer, the parser must degrade gracefully on files that never
//! compile (the fixture corpus): every scan is bounds-checked and an
//! unclosed bracket simply ends the enclosing construct at end-of-input.

use crate::lexer::{Tok, TokKind};

/// The parse tree of one file.
#[derive(Debug, Default)]
pub struct FileTree {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

/// One item (possibly nested inside a `mod`, `impl` or `trait`).
#[derive(Debug)]
pub struct Item {
    /// What the item is.
    pub kind: ItemKind,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Item has a `pub` (or `pub(...)`) visibility qualifier.
    pub is_pub: bool,
    /// Item carries a `#[cfg(test…)]` attribute *itself* (enclosing-mod
    /// gating is resolved by the tree walk, not stored here).
    pub cfg_test: bool,
}

/// Item classification; containers carry their children.
#[derive(Debug)]
pub enum ItemKind {
    /// An `enum` definition.
    Enum(EnumDef),
    /// A `struct` (or `union`) definition.
    Struct {
        /// Type name.
        name: String,
    },
    /// A function with its body's expression events (empty for bodyless
    /// trait-method declarations).
    Fn(FnDef),
    /// An `impl` block; `self_ty` is the implementing type's last path
    /// segment (`impl fmt::Debug for CcDriver` → `CcDriver`).
    Impl {
        /// The `Self` type's name.
        self_ty: String,
        /// Associated items.
        items: Vec<Item>,
    },
    /// An inline `mod name { … }`.
    Mod {
        /// Module name.
        name: String,
        /// Contained items.
        items: Vec<Item>,
    },
    /// A `trait` definition (default method bodies are analyzed).
    Trait {
        /// Trait name.
        name: String,
        /// Associated items.
        items: Vec<Item>,
    },
}

/// An `enum` definition.
#[derive(Debug)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant names, in declaration order.
    pub variants: Vec<String>,
    /// The enum is marked `// lint:exhaustive` (comment leading the item
    /// header): `match`es over it must not use wildcard arms.
    pub exhaustive: bool,
}

/// A function and the expression events of its body.
#[derive(Debug)]
pub struct FnDef {
    /// Function name.
    pub name: String,
    /// Flattened body events in source order (nested blocks included).
    pub events: Vec<ExprEvent>,
}

/// One structural fact about a fn body that a rule can match on.
#[derive(Debug)]
pub enum ExprEvent {
    /// `.name(…)` — a method call.
    MethodCall {
        /// Method name.
        name: String,
        /// 1-based line of the method name.
        line: u32,
    },
    /// `name!(…)` / `name![…]` / `name!{…}` — a macro invocation.
    MacroCall {
        /// Macro name (without the `!`).
        name: String,
        /// 1-based line.
        line: u32,
    },
    /// `Head::name(…)` — a two-segment path call (`Box::new`,
    /// `Vec::with_capacity`, enum constructors). Only the final two
    /// segments are recorded: `std::boxed::Box::new(…)` yields
    /// `("Box", "new")`.
    PathCall {
        /// Path head (the segment before the final `::`).
        head: String,
        /// Called name (the segment before the `(`).
        name: String,
        /// 1-based line of the head segment.
        line: u32,
    },
    /// `expr[…]` — an index expression (panics when out of bounds).
    Index {
        /// 1-based line of the `[`.
        line: u32,
    },
    /// `expr as Ty` — a cast to a primitive-named target.
    Cast {
        /// Target type name (first identifier after `as`).
        target: String,
        /// The source expression carries float evidence: a float literal
        /// or an `f64`/`f32` token in the postfix chain / parenthesized
        /// group directly under the cast.
        float_source: bool,
        /// 1-based line of the `as`.
        line: u32,
    },
    /// A `match` expression with its parsed arms.
    Match(MatchExpr),
}

/// A parsed `match` expression.
#[derive(Debug)]
pub struct MatchExpr {
    /// 1-based line of the `match` keyword.
    pub line: u32,
    /// The arms, in source order.
    pub arms: Vec<Arm>,
}

/// One match arm's top-level pattern facts.
#[derive(Debug)]
pub struct Arm {
    /// 1-based line of the arm's first pattern token.
    pub line: u32,
    /// `(enum_or_head, variant)` for each path-shaped top-level
    /// alternative: `AlgorithmKind::Cubic` → `("AlgorithmKind",
    /// Some("Cubic"))`, `Some(x)` → `("Some", None)`. `Self::X` is
    /// resolved to the enclosing `impl`'s type.
    pub heads: Vec<(String, Option<String>)>,
    /// `Some(text)` when an alternative is irrefutable: `_`, or a bare
    /// lower-case binding identifier (with any `ref`/`mut`/`&` stripped).
    /// A guard does not clear this — `other if cond =>` still absorbs
    /// newly added variants.
    pub wildcard: Option<String>,
}

/// Identifier tokens that are Rust keywords (or pattern binding modes):
/// a `[` following one of these opens an array/slice *pattern or
/// literal*, not an index expression.
const KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "crate", "do", "dyn", "else",
    "enum", "extern", "fn", "for", "if", "impl", "in", "let", "loop", "macro", "match", "mod",
    "move", "mut", "pub", "ref", "return", "static", "struct", "super", "trait", "type", "unsafe",
    "use", "where", "while", "yield",
];

/// Parse a lexed file into its item tree.
pub fn parse(toks: &[Tok]) -> FileTree {
    let mut p = Parser { toks };
    let mut i = 0;
    FileTree { items: p.items(&mut i, toks.len(), None) }
}

struct Parser<'a> {
    toks: &'a [Tok],
}

impl Parser<'_> {
    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    fn kind(&self, i: usize) -> Option<TokKind> {
        self.toks.get(i).map(|t| t.kind)
    }

    /// Index one past the bracket matching the opener at `open`
    /// (`(`/`[`/`{`), tolerant of unclosed input.
    fn after_matched(&self, open: usize, end: usize) -> usize {
        let (o, c) = match self.text(open) {
            "(" => ("(", ")"),
            "[" => ("[", "]"),
            "{" => ("{", "}"),
            _ => return open + 1,
        };
        let mut depth = 0usize;
        let mut j = open;
        while j < end {
            if !self.toks[j].is_comment() {
                let t = self.text(j);
                if t == o {
                    depth += 1;
                } else if t == c {
                    depth -= 1;
                    if depth == 0 {
                        return j + 1;
                    }
                }
            }
            j += 1;
        }
        end
    }

    /// Skip to one past the next `;` at bracket depth 0 (for `use`,
    /// `const`, `static`, `type` items).
    fn after_semi(&self, from: usize, end: usize) -> usize {
        let mut j = from;
        while j < end {
            let t = &self.toks[j];
            if !t.is_comment() {
                match t.text.as_str() {
                    "(" | "[" | "{" => {
                        j = self.after_matched(j, end);
                        continue;
                    }
                    ";" => return j + 1,
                    _ => {}
                }
            }
            j += 1;
        }
        end
    }

    /// Parse items until `end`, advancing `*i`. `impl_ty` is the
    /// enclosing impl's self type for `Self::` resolution in bodies.
    fn items(&mut self, i: &mut usize, end: usize, impl_ty: Option<&str>) -> Vec<Item> {
        let mut out = Vec::new();
        // Pending facts harvested from the item header being accumulated.
        let mut p_pub = false;
        let mut p_cfg_test = false;
        let mut p_exhaustive = false;
        macro_rules! reset {
            () => {{
                p_pub = false;
                p_cfg_test = false;
                p_exhaustive = false;
            }};
        }
        while *i < end {
            let t = &self.toks[*i];
            if t.is_comment() {
                if crate::lints::comment_directive(&t.text)
                    .is_some_and(|d| d.starts_with("lint:exhaustive"))
                {
                    p_exhaustive = true;
                }
                *i += 1;
                continue;
            }
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "#") => {
                    let mut j = *i + 1;
                    if self.text(j) == "!" {
                        j += 1;
                    }
                    if self.text(j) == "[" {
                        let close = self.after_matched(j, end);
                        let attr = &self.toks[j..close];
                        let has = |s: &str| {
                            attr.iter().any(|t| t.kind == TokKind::Ident && t.text == s)
                        };
                        if has("cfg") && has("test") {
                            p_cfg_test = true;
                        }
                        *i = close;
                    } else {
                        *i += 1;
                    }
                }
                (TokKind::Ident, "pub") => {
                    p_pub = true;
                    *i += 1;
                    if self.text(*i) == "(" {
                        *i = self.after_matched(*i, end);
                    }
                }
                (TokKind::Ident, "unsafe" | "async" | "default") => *i += 1,
                (TokKind::Ident, "extern") => {
                    // `extern crate x;`, `extern "C" { … }`, `extern "C" fn`.
                    *i += 1;
                    if self.kind(*i) == Some(TokKind::Str) {
                        *i += 1;
                    }
                    if self.text(*i) == "crate" {
                        *i = self.after_semi(*i, end);
                        reset!();
                    } else if self.text(*i) == "{" {
                        *i = self.after_matched(*i, end);
                        reset!();
                    }
                }
                (TokKind::Ident, "const" | "static" | "type" | "use") => {
                    // `const fn` is a fn modifier, not a const item.
                    if t.text == "const" && self.text(*i + 1) == "fn" {
                        *i += 1;
                    } else {
                        *i = self.after_semi(*i + 1, end);
                        reset!();
                    }
                }
                (TokKind::Ident, "macro_rules") => {
                    // `macro_rules! name { … }`: the body is token soup.
                    let mut j = *i + 1;
                    while j < end && !matches!(self.text(j), "(" | "[" | "{") {
                        j += 1;
                    }
                    *i = self.after_matched(j, end);
                    if self.text(*i) == ";" {
                        *i += 1;
                    }
                    reset!();
                }
                (TokKind::Ident, "enum") => {
                    let line = t.line;
                    let item = self.parse_enum(i, end, p_exhaustive);
                    out.push(Item { kind: item, line, is_pub: p_pub, cfg_test: p_cfg_test });
                    reset!();
                }
                (TokKind::Ident, "struct" | "union") => {
                    let line = t.line;
                    let name = self.ident_after(*i, end);
                    // Skip to the body (`{…}`) or the terminating `;`.
                    let mut j = *i + 1;
                    while j < end && !matches!(self.text(j), "{" | ";" | "(") {
                        j += 1;
                    }
                    *i = match self.text(j) {
                        "{" => self.after_matched(j, end),
                        "(" => self.after_semi(self.after_matched(j, end), end),
                        _ => j + 1,
                    };
                    out.push(Item {
                        kind: ItemKind::Struct { name },
                        line,
                        is_pub: p_pub,
                        cfg_test: p_cfg_test,
                    });
                    reset!();
                }
                (TokKind::Ident, "fn") => {
                    let line = t.line;
                    let name = self.ident_after(*i, end);
                    // Signature: scan to the body `{` or a bodyless `;`,
                    // skipping matched `(`/`[` groups (the argument list).
                    let mut j = *i + 1;
                    let mut events = Vec::new();
                    loop {
                        if j >= end {
                            *i = end;
                            break;
                        }
                        match self.text(j) {
                            "(" | "[" => j = self.after_matched(j, end),
                            "{" => {
                                let close = self.after_matched(j, end);
                                events = self.body_events(j + 1, close.saturating_sub(1), impl_ty);
                                *i = close;
                                break;
                            }
                            ";" => {
                                *i = j + 1;
                                break;
                            }
                            _ if self.toks[j].is_comment() => j += 1,
                            _ => j += 1,
                        }
                    }
                    out.push(Item {
                        kind: ItemKind::Fn(FnDef { name, events }),
                        line,
                        is_pub: p_pub,
                        cfg_test: p_cfg_test,
                    });
                    reset!();
                }
                (TokKind::Ident, "impl") => {
                    let line = t.line;
                    // Header: tokens up to the `{`; the self type is the
                    // segment after `for` when present (trait impls).
                    let mut j = *i + 1;
                    let mut after_for: Option<usize> = None;
                    while j < end && self.text(j) != "{" {
                        if self.kind(j) == Some(TokKind::Ident) && self.text(j) == "for" {
                            after_for = Some(j + 1);
                        }
                        j += 1;
                    }
                    let ty_start = after_for.unwrap_or(*i + 1);
                    let self_ty = self.type_head(ty_start, j);
                    let close = self.after_matched(j, end);
                    let mut k = j + 1;
                    let items =
                        self.items(&mut k, close.saturating_sub(1), Some(self_ty.as_str()));
                    *i = close;
                    out.push(Item {
                        kind: ItemKind::Impl { self_ty, items },
                        line,
                        is_pub: p_pub,
                        cfg_test: p_cfg_test,
                    });
                    reset!();
                }
                (TokKind::Ident, "mod") => {
                    let line = t.line;
                    let name = self.ident_after(*i, end);
                    let mut j = *i + 1;
                    while j < end && !matches!(self.text(j), "{" | ";") {
                        j += 1;
                    }
                    if self.text(j) == "{" {
                        let close = self.after_matched(j, end);
                        let mut k = j + 1;
                        let items = self.items(&mut k, close.saturating_sub(1), impl_ty);
                        *i = close;
                        out.push(Item {
                            kind: ItemKind::Mod { name, items },
                            line,
                            is_pub: p_pub,
                            cfg_test: p_cfg_test,
                        });
                    } else {
                        *i = j + 1;
                    }
                    reset!();
                }
                (TokKind::Ident, "trait") => {
                    let line = t.line;
                    let name = self.ident_after(*i, end);
                    let mut j = *i + 1;
                    while j < end && self.text(j) != "{" {
                        j += 1;
                    }
                    let close = self.after_matched(j, end);
                    let mut k = j + 1;
                    let items = self.items(&mut k, close.saturating_sub(1), impl_ty);
                    *i = close;
                    out.push(Item {
                        kind: ItemKind::Trait { name, items },
                        line,
                        is_pub: p_pub,
                        cfg_test: p_cfg_test,
                    });
                    reset!();
                }
                _ => {
                    // Unrecognized token between items: drop pending facts
                    // (matched groups are skipped whole so stray brackets
                    // cannot desynchronize the item walk).
                    if matches!(t.text.as_str(), "(" | "[" | "{") {
                        *i = self.after_matched(*i, end);
                    } else {
                        *i += 1;
                    }
                    reset!();
                }
            }
        }
        out
    }

    /// First identifier token after position `i` (for item names).
    fn ident_after(&self, i: usize, end: usize) -> String {
        let mut j = i + 1;
        while j < end {
            let t = &self.toks[j];
            if t.kind == TokKind::Ident {
                return t.text.clone();
            }
            if !t.is_comment() && t.text == "!" {
                // `fn` never hits this; defensive for malformed input.
                return String::new();
            }
            j += 1;
        }
        String::new()
    }

    /// The head type name of a type expression in `[start, end)`: the
    /// last identifier of the leading path, generics stripped —
    /// `fmt::Debug` → `Debug`, `Foo<T>` → `Foo`, `&mut Bar` → `Bar`.
    fn type_head(&self, start: usize, end: usize) -> String {
        let mut last = String::new();
        let mut j = start;
        while j < end {
            let t = &self.toks[j];
            if t.is_comment() {
                j += 1;
                continue;
            }
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "dyn" | "mut") => {}
                (TokKind::Ident, _) => last = t.text.clone(),
                (TokKind::Punct, "&" | "*") => {}
                (TokKind::Punct, "::") => {}
                (TokKind::Lifetime, _) => {}
                (TokKind::Punct, "<") => {
                    // Generic arguments end the head path.
                    break;
                }
                _ => break,
            }
            j += 1;
        }
        last
    }

    fn parse_enum(&mut self, i: &mut usize, end: usize, exhaustive: bool) -> ItemKind {
        let name = self.ident_after(*i, end);
        let mut j = *i + 1;
        while j < end && self.text(j) != "{" {
            if self.text(j) == ";" {
                // `enum Foo;` is invalid Rust; bail gracefully.
                *i = j + 1;
                return ItemKind::Enum(EnumDef { name, variants: Vec::new(), exhaustive });
            }
            j += 1;
        }
        let close = self.after_matched(j, end);
        let body_end = close.saturating_sub(1);
        let mut variants = Vec::new();
        let mut k = j + 1;
        while k < body_end {
            let t = &self.toks[k];
            if t.is_comment() {
                k += 1;
                continue;
            }
            if t.text == "#" {
                k += 1;
                if self.text(k) == "[" {
                    k = self.after_matched(k, body_end);
                }
                continue;
            }
            if t.kind == TokKind::Ident {
                variants.push(t.text.clone());
                k += 1;
                // Skip payload and/or discriminant up to the `,`.
                while k < body_end && self.text(k) != "," {
                    if matches!(self.text(k), "(" | "[" | "{") {
                        k = self.after_matched(k, body_end);
                    } else {
                        k += 1;
                    }
                }
                k += 1;
            } else {
                k += 1;
            }
        }
        *i = close;
        ItemKind::Enum(EnumDef { name, variants, exhaustive })
    }

    /// Scan a fn body `[start, end)` into its expression events.
    fn body_events(&self, start: usize, end: usize, impl_ty: Option<&str>) -> Vec<ExprEvent> {
        let mut ev = Vec::new();
        let mut j = start;
        while j < end {
            let t = &self.toks[j];
            if t.is_comment() {
                j += 1;
                continue;
            }
            match t.kind {
                TokKind::Ident if t.text == "match" => {
                    if let Some(m) = self.parse_match(j, end, impl_ty) {
                        ev.push(ExprEvent::Match(m));
                    }
                    // Keep scanning linearly: scrutinee, guards and arm
                    // bodies contribute their own events (nested matches
                    // included).
                    j += 1;
                }
                TokKind::Ident
                    if self.text(j + 1) == "::"
                        && self.toks.get(j + 2).is_some_and(|n| n.kind == TokKind::Ident)
                        && self.text(j + 3) == "(" =>
                {
                    ev.push(ExprEvent::PathCall {
                        head: t.text.clone(),
                        name: self.toks[j + 2].text.clone(),
                        line: t.line,
                    });
                    // Step past the head only: the called segment is
                    // rescanned so `A::b(` nested inside arguments of an
                    // outer call still contributes its own events.
                    j += 1;
                }
                TokKind::Ident
                    if self.text(j + 1) == "!" && matches!(self.text(j + 2), "(" | "[" | "{") =>
                {
                    ev.push(ExprEvent::MacroCall { name: t.text.clone(), line: t.line });
                    // Step *into* the delimiter so macro arguments are
                    // scanned, but never read its `[`/`{` as an index
                    // expression or block.
                    j += 3;
                }
                TokKind::Ident if t.text == "as" => {
                    if let Some(target) = self.toks.get(j + 1).filter(|n| n.kind == TokKind::Ident)
                    {
                        ev.push(ExprEvent::Cast {
                            target: target.text.clone(),
                            float_source: self.cast_source_has_float(start, j),
                            line: t.line,
                        });
                    }
                    j += 1;
                }
                TokKind::Punct if t.text == "." => {
                    if let (Some(name), "(") = (
                        self.toks.get(j + 1).filter(|n| n.kind == TokKind::Ident),
                        self.text(j + 2),
                    ) {
                        ev.push(ExprEvent::MethodCall { name: name.text.clone(), line: name.line });
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                TokKind::Punct if t.text == "[" => {
                    if self.is_index_bracket(start, j) {
                        ev.push(ExprEvent::Index { line: t.line });
                    }
                    j += 1;
                }
                _ => j += 1,
            }
        }
        ev
    }

    /// Whether the `[` at `j` opens an index expression: it directly
    /// follows a completed expression (identifier that is not a keyword,
    /// a closing bracket, `?`, or a string literal) rather than starting
    /// an array literal, slice pattern, attribute or macro delimiter.
    fn is_index_bracket(&self, start: usize, j: usize) -> bool {
        let mut k = j;
        while k > start {
            k -= 1;
            let p = &self.toks[k];
            if p.is_comment() {
                continue;
            }
            return match p.kind {
                TokKind::Ident => !KEYWORDS.contains(&p.text.as_str()),
                TokKind::Punct => matches!(p.text.as_str(), ")" | "]" | "?"),
                TokKind::Str => true,
                _ => false,
            };
        }
        false
    }

    /// Float evidence in the expression a cast at `as_pos` applies to:
    /// walk the postfix chain backwards (identifiers, `.`/`::` links,
    /// matched groups) and report any float literal or `f64`/`f32` token.
    fn cast_source_has_float(&self, start: usize, as_pos: usize) -> bool {
        let mut k = as_pos;
        let mut expect_group_or_atom = true;
        while k > start {
            k -= 1;
            let p = &self.toks[k];
            if p.is_comment() {
                continue;
            }
            match p.kind {
                TokKind::Float => return true,
                TokKind::Ident if matches!(p.text.as_str(), "f64" | "f32") => return true,
                TokKind::Ident | TokKind::Int => {
                    if !expect_group_or_atom {
                        return false;
                    }
                    expect_group_or_atom = false;
                }
                TokKind::Punct if matches!(p.text.as_str(), ")" | "]") => {
                    if !expect_group_or_atom {
                        return false;
                    }
                    // Scan the matched group for float evidence, then
                    // continue the chain before its opener.
                    let close = p.text.clone();
                    let open = if close == ")" { "(" } else { "[" };
                    let mut depth = 1usize;
                    while k > start && depth > 0 {
                        k -= 1;
                        let q = &self.toks[k];
                        if q.is_comment() {
                            continue;
                        }
                        if q.text == close {
                            depth += 1;
                        } else if q.text == open {
                            depth -= 1;
                        } else if q.kind == TokKind::Float
                            || (q.kind == TokKind::Ident
                                && matches!(q.text.as_str(), "f64" | "f32"))
                        {
                            return true;
                        }
                    }
                    expect_group_or_atom = false;
                }
                TokKind::Punct if matches!(p.text.as_str(), "." | "::") => {
                    expect_group_or_atom = true;
                }
                _ => return false,
            }
        }
        false
    }

    /// Parse the `match` whose keyword is at `m`: locate the arms block
    /// (the first `{` at depth 0 — scrutinees cannot contain bare struct
    /// literals) and extract each arm's top-level pattern facts.
    fn parse_match(&self, m: usize, end: usize, impl_ty: Option<&str>) -> Option<MatchExpr> {
        let mut j = m + 1;
        while j < end && self.text(j) != "{" {
            if self.toks[j].is_comment() {
                j += 1;
                continue;
            }
            if matches!(self.text(j), "(" | "[") {
                j = self.after_matched(j, end);
            } else if self.text(j) == ";" || self.text(j) == "}" {
                return None; // malformed / not actually a match expression
            } else {
                j += 1;
            }
        }
        if j >= end {
            return None;
        }
        let arms_end = self.after_matched(j, end).saturating_sub(1);
        let mut arms = Vec::new();
        let mut k = j + 1;
        while k < arms_end {
            let t = &self.toks[k];
            if t.is_comment() || t.text == "," || t.text == "|" {
                k += 1;
                continue;
            }
            if t.text == "#" {
                k += 1;
                if self.text(k) == "[" {
                    k = self.after_matched(k, arms_end);
                }
                continue;
            }
            // Pattern: tokens up to `=>` at depth 0.
            let pat_start = k;
            let mut depth = 0usize;
            let mut arrow = None;
            let mut p = k;
            while p < arms_end {
                let tt = &self.toks[p];
                if !tt.is_comment() {
                    match tt.text.as_str() {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth = depth.saturating_sub(1),
                        "=>" if depth == 0 => {
                            arrow = Some(p);
                            break;
                        }
                        _ => {}
                    }
                }
                p += 1;
            }
            let Some(arrow) = arrow else { break };
            arms.push(self.parse_arm(pat_start, arrow, impl_ty));
            // Arm body: a block, or an expression up to `,` at depth 0.
            k = arrow + 1;
            while k < arms_end && self.toks[k].is_comment() {
                k += 1;
            }
            if self.text(k) == "{" {
                k = self.after_matched(k, arms_end);
            } else {
                let mut depth = 0usize;
                while k < arms_end {
                    let tt = &self.toks[k];
                    if !tt.is_comment() {
                        match tt.text.as_str() {
                            "(" | "[" | "{" => depth += 1,
                            ")" | "]" | "}" => depth = depth.saturating_sub(1),
                            "," if depth == 0 => break,
                            _ => {}
                        }
                    }
                    k += 1;
                }
            }
        }
        Some(MatchExpr { line: self.toks[m].line, arms })
    }

    /// Extract one arm's top-level facts from its pattern tokens
    /// `[start, arrow)`; a trailing `if` guard at depth 0 is cut first.
    fn parse_arm(&self, start: usize, arrow: usize, impl_ty: Option<&str>) -> Arm {
        let line = self.toks[start].line;
        // Cut the guard.
        let mut pat_end = arrow;
        let mut depth = 0usize;
        let mut p = start;
        while p < arrow {
            let t = &self.toks[p];
            if !t.is_comment() {
                match (t.kind, t.text.as_str()) {
                    (_, "(" | "[" | "{") => depth += 1,
                    (_, ")" | "]" | "}") => depth = depth.saturating_sub(1),
                    (TokKind::Ident, "if") if depth == 0 => {
                        pat_end = p;
                        break;
                    }
                    _ => {}
                }
            }
            p += 1;
        }
        // Split alternatives on `|` at depth 0.
        let mut heads = Vec::new();
        let mut wildcard = None;
        let mut alt_start = start;
        let mut depth = 0usize;
        let mut q = start;
        while q <= pat_end {
            let at_sep = q == pat_end
                || (!self.toks[q].is_comment()
                    && depth == 0
                    && self.toks[q].text == "|"
                    && self.text(q + 1) != "|");
            if at_sep {
                self.classify_alt(alt_start, q, impl_ty, &mut heads, &mut wildcard);
                alt_start = q + 1;
            } else if !self.toks[q].is_comment() {
                match self.toks[q].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            q += 1;
        }
        Arm { line, heads, wildcard }
    }

    /// Classify one pattern alternative `[start, end)`.
    fn classify_alt(
        &self,
        start: usize,
        end: usize,
        impl_ty: Option<&str>,
        heads: &mut Vec<(String, Option<String>)>,
        wildcard: &mut Option<String>,
    ) {
        // Strip leading binding modes and reference sigils.
        let mut j = start;
        while j < end {
            let t = &self.toks[j];
            if t.is_comment()
                || matches!(t.text.as_str(), "&" | "&&")
                || (t.kind == TokKind::Ident && matches!(t.text.as_str(), "ref" | "mut" | "box"))
            {
                j += 1;
            } else {
                break;
            }
        }
        let Some(first) = self.toks.get(j).filter(|_| j < end) else { return };
        if first.kind != TokKind::Ident {
            return; // literal, tuple, slice, range, … — neither fact
        }
        if matches!(first.text.as_str(), "true" | "false") {
            return;
        }
        // Lone identifier?
        let mut k = j + 1;
        while k < end && self.toks[k].is_comment() {
            k += 1;
        }
        let next = if k < end { self.text(k) } else { "" };
        match next {
            "::" => {
                let head = if first.text == "Self" {
                    impl_ty.unwrap_or("Self").to_string()
                } else {
                    first.text.clone()
                };
                // Walk the path to its last segment (the variant).
                let mut seg = None;
                let mut q = k;
                while q < end {
                    let t = &self.toks[q];
                    if t.kind == TokKind::Ident {
                        seg = Some(t.text.clone());
                    } else if !t.is_comment() && t.text != "::" {
                        break;
                    }
                    q += 1;
                }
                heads.push((head, seg));
            }
            "(" | "{" => {
                // `Some(x)` / `Point { .. }`: an unqualified variant or
                // struct pattern; the head is the name itself.
                heads.push((first.text.clone(), None));
            }
            "" => {
                // A bare identifier alternative: `_` and snake_case names
                // bind anything; a capitalized bare name is (by workspace
                // convention) a unit variant brought in scope by a `use`.
                let is_binding = first.text == "_"
                    || first.text.chars().next().is_some_and(|c| c.is_lowercase() || c == '_');
                if is_binding && wildcard.is_none() {
                    *wildcard = Some(first.text.clone());
                }
            }
            "@" => {
                // `name @ subpattern`: the binding itself is as wide as
                // its subpattern; classify the subpattern instead.
                self.classify_alt(k + 1, end, impl_ty, heads, wildcard);
            }
            ".." | "..=" => {
                // Range pattern headed by a const: neither fact.
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree(src: &str) -> FileTree {
        parse(&lex(src))
    }

    fn flat_fns(items: &[Item], out: &mut Vec<(String, bool, Vec<String>)>, in_test: bool) {
        for it in items {
            let test = in_test || it.cfg_test;
            match &it.kind {
                ItemKind::Fn(f) => {
                    let evs = f
                        .events
                        .iter()
                        .map(|e| match e {
                            ExprEvent::MethodCall { name, .. } => format!("call:{name}"),
                            ExprEvent::MacroCall { name, .. } => format!("macro:{name}"),
                            ExprEvent::PathCall { head, name, .. } => {
                                format!("path:{head}::{name}")
                            }
                            ExprEvent::Index { .. } => "index".into(),
                            ExprEvent::Cast { target, float_source, .. } => {
                                format!("cast:{target}{}", if *float_source { ":f" } else { "" })
                            }
                            ExprEvent::Match(m) => format!("match:{}", m.arms.len()),
                        })
                        .collect();
                    out.push((f.name.clone(), test, evs));
                }
                ItemKind::Impl { items, .. }
                | ItemKind::Mod { items, .. }
                | ItemKind::Trait { items, .. } => flat_fns(items, out, test),
                _ => {}
            }
        }
    }

    fn fns(src: &str) -> Vec<(String, bool, Vec<String>)> {
        let mut out = Vec::new();
        flat_fns(&tree(src).items, &mut out, false);
        out
    }

    #[test]
    fn items_nesting_and_cfg_test() {
        let src = r#"
            pub struct S { a: u64 }
            impl S { pub fn m(&self) -> u64 { self.a.wrapping_add(1) } }
            #[cfg(test)]
            mod tests {
                fn helper(x: Option<u64>) -> u64 { x.unwrap() }
            }
        "#;
        let f = fns(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0], ("m".into(), false, vec!["call:wrapping_add".into()]));
        assert_eq!(f[1], ("helper".into(), true, vec!["call:unwrap".into()]));
    }

    #[test]
    fn enum_variants_and_exhaustive_marker() {
        let src = "
            // lint:exhaustive
            #[derive(Debug)]
            pub enum Kind { A, B(u64), C { x: u64 }, D = 4 }
            enum Free { X, Y }
        ";
        let t = tree(src);
        let enums: Vec<&EnumDef> = t
            .items
            .iter()
            .filter_map(|i| match &i.kind {
                ItemKind::Enum(e) => Some(e),
                _ => None,
            })
            .collect();
        assert_eq!(enums.len(), 2);
        assert_eq!(enums[0].name, "Kind");
        assert_eq!(enums[0].variants, vec!["A", "B", "C", "D"]);
        assert!(enums[0].exhaustive);
        assert!(!enums[1].exhaustive);
    }

    #[test]
    fn body_events_index_cast_macro() {
        let src = "fn f(xs: &[u64], n: usize, w: f64) -> u64 {
            let a = xs[n];
            let b = [1u64, 2][0];
            let c = vec![0u64; n];
            let d = n as u32;
            let e = (w * 4.0) as u64;
            let g = n as u64;
            panic!(\"{}\", a + b + c[0] + d as u64 + e + g);
        }";
        let f = fns(src);
        let evs = &f[0].2;
        assert_eq!(evs.iter().filter(|e| *e == "index").count(), 3, "{evs:?}");
        assert!(evs.contains(&"cast:u32".to_string()));
        assert!(evs.contains(&"cast:u64:f".to_string()));
        assert!(evs.contains(&"macro:panic".to_string()));
        assert!(evs.contains(&"macro:vec".to_string()));
        // The widening cast has no float evidence.
        assert!(evs.contains(&"cast:u64".to_string()), "{evs:?}");
    }

    #[test]
    fn path_calls_record_the_final_two_segments() {
        let src = "fn f(n: usize) -> Box<u64> {
            let v = Vec::with_capacity(n);
            let b = std::boxed::Box::new(v.len() as u64);
            drop(Kind::A(n));
            b
        }";
        let evs = &fns(src)[0].2;
        assert!(evs.contains(&"path:Vec::with_capacity".to_string()), "{evs:?}");
        assert!(evs.contains(&"path:Box::new".to_string()), "{evs:?}");
        assert!(evs.contains(&"path:Kind::A".to_string()), "{evs:?}");
        // Intermediate segments of the long path are not events.
        assert!(!evs.iter().any(|e| e.contains("std::") || e.contains("boxed::Box")), "{evs:?}");
        // The argument of an outer path call is still scanned.
        assert!(evs.contains(&"call:len".to_string()), "{evs:?}");
        assert!(evs.contains(&"cast:u64".to_string()), "{evs:?}");
    }

    #[test]
    fn array_literals_types_and_patterns_are_not_indexing() {
        let src = "fn f() -> u64 {
            let a: [u64; 4] = [1, 2, 3, 4];
            let [x, y, ..] = a;
            if let [z] = &a[..1] { return *z + x + y; }
            0
        }";
        let f = fns(src);
        // Only `a[..1]` is an index expression.
        assert_eq!(f[0].2.iter().filter(|e| *e == "index").count(), 1, "{f:?}");
    }

    #[test]
    fn match_arms_heads_wildcards_and_self_resolution() {
        let src = "
            impl Kind {
                fn ordinal(self) -> u32 {
                    match self {
                        Self::A => 0,
                        Kind::B | Kind::C => 1,
                        other => { let _ = other; 2 }
                    }
                }
            }
            fn g(x: Option<u64>) -> u64 {
                match x { Some(v) if v > 3 => v, Some(v) => v + 1, None => 0, _ => 9 }
            }
        ";
        let t = tree(src);
        let mut matches = Vec::new();
        fn collect<'a>(items: &'a [Item], out: &mut Vec<&'a MatchExpr>) {
            for it in items {
                match &it.kind {
                    ItemKind::Fn(f) => {
                        for e in &f.events {
                            if let ExprEvent::Match(m) = e {
                                out.push(m);
                            }
                        }
                    }
                    ItemKind::Impl { items, .. }
                    | ItemKind::Mod { items, .. }
                    | ItemKind::Trait { items, .. } => collect(items, out),
                    _ => {}
                }
            }
        }
        collect(&t.items, &mut matches);
        assert_eq!(matches.len(), 2);
        let m0 = matches[0];
        assert_eq!(m0.arms.len(), 3, "{m0:?}");
        assert_eq!(m0.arms[0].heads, vec![("Kind".to_string(), Some("A".to_string()))]);
        assert_eq!(m0.arms[1].heads.len(), 2);
        assert_eq!(m0.arms[2].wildcard.as_deref(), Some("other"));
        let m1 = matches[1];
        assert_eq!(m1.arms.len(), 4, "{m1:?}");
        // The guarded Some arm still reports its head.
        assert_eq!(m1.arms[0].heads, vec![("Some".to_string(), None)]);
        assert_eq!(m1.arms[3].wildcard.as_deref(), Some("_"));
    }
}
