//! `xtask` — workspace automation for the MPTCP reproduction.
//!
//! Three subcommands: `cargo xtask lint`, the determinism & invariant
//! lint pass described in DESIGN.md §3.2d; `cargo xtask bench-check`, the
//! `BENCH_sim.json` performance-regression gate; and `cargo xtask
//! perf-table`, which regenerates the README performance table from the
//! same records. The library half exists so the fixture self-tests
//! (`xtask/tests/`) can drive the exact code the CLI runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod lexer;
pub mod lints;
pub mod parse;
pub mod perf_table;
pub mod report;

pub use bench::{compare, is_throughput_field, parse_bench, BenchRecord, Comparison};
pub use lints::{
    collect_allows, collect_symbols, lint_group, lint_group_with, Allow, FileInput, Finding,
    PubItem, Rule, Scope, Symbols,
};
pub use report::{findings_from_json, findings_to_json, github_annotations};

use std::io;
use std::path::{Path, PathBuf};

/// Crates whose `src/` is simulation library code (full rule set: the
/// type-level `unordered-iter` ban and the `f32` ban apply).
pub const SIM_CRATES: &[&str] = &["core", "netsim", "proto", "topology", "workload"];

/// Directories never linted: external stand-ins, build output, and the
/// linter's own crate dir (its `src/` is added as an explicit group by
/// `lint_workspace`; its fixture corpus is deliberately violating).
const EXCLUDED_TOP_LEVEL: &[&str] = &["vendored", "target", "xtask"];

/// Locate the workspace root: walk up from `start` to the first directory
/// whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn walk_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<_> =
        std::fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            walk_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn load_group(
    root: &Path,
    dirs: &[(PathBuf, Scope)],
) -> io::Result<Vec<FileInput>> {
    let mut files = Vec::new();
    for (dir, scope) in dirs {
        let mut paths = Vec::new();
        walk_rs_files(dir, &mut paths)?;
        for p in paths {
            let source = std::fs::read_to_string(&p)?;
            let rel = p.strip_prefix(root).unwrap_or(&p).to_path_buf();
            files.push(FileInput { path: rel, source, scope: *scope });
        }
    }
    Ok(files)
}

/// Lint the whole workspace rooted at `root`. Grouping is per crate so
/// the `digest-surface` rule can find `DetDigest` impls anywhere in the
/// owning crate; `src/`, `tests/`, `benches/` and `examples/` of the
/// umbrella crate form one group, and `xtask/src` itself a final one (the
/// linter eats its own cooking — its fixture corpus under `xtask/tests`
/// stays excluded because it is deliberately violating). The symbol
/// table is collected over *all* groups first, so `exhaustive-match`
/// sees an enum's `lint:exhaustive` marker from any crate.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut groups: Vec<Vec<FileInput>> = Vec::new();
    for crate_dir in crate_dirs {
        let name = crate_dir.file_name().and_then(|n| n.to_str()).unwrap_or("").to_string();
        if EXCLUDED_TOP_LEVEL.contains(&name.as_str()) {
            continue;
        }
        let src_scope =
            if SIM_CRATES.contains(&name.as_str()) { Scope::Sim } else { Scope::General };
        let dirs = vec![
            (crate_dir.join("src"), src_scope),
            (crate_dir.join("tests"), Scope::General),
            (crate_dir.join("benches"), Scope::General),
        ];
        groups.push(load_group(root, &dirs)?);
    }

    // Umbrella crate: integration tests and examples.
    groups.push(load_group(
        root,
        &[
            (root.join("src"), Scope::General),
            (root.join("tests"), Scope::General),
            (root.join("examples"), Scope::General),
        ],
    )?);

    // The linter's own sources (not its fixture corpus).
    groups.push(load_group(root, &[(root.join("xtask").join("src"), Scope::General)])?);

    let all_files: Vec<FileInput> = groups.iter().flatten().cloned().collect();
    let symbols = lints::collect_symbols(&all_files);

    let mut findings = Vec::new();
    for files in &groups {
        findings.extend(lint_group_with(files, &symbols));
    }
    findings.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    Ok(findings)
}

/// Every well-formed `lint:allow` annotation in the workspace (for the
/// annotation-audit test), plus findings for the malformed ones.
pub fn audit_allows(root: &Path) -> io::Result<(Vec<(PathBuf, Allow)>, Vec<Finding>)> {
    let mut dirs: Vec<(PathBuf, Scope)> = vec![
        (root.join("src"), Scope::General),
        (root.join("tests"), Scope::General),
        (root.join("examples"), Scope::General),
        (root.join("xtask").join("src"), Scope::General),
    ];
    let crates_dir = root.join("crates");
    for entry in std::fs::read_dir(&crates_dir)? {
        let p = entry?.path();
        if p.is_dir() {
            dirs.push((p, Scope::General));
        }
    }
    let files = load_group(root, &dirs)?;
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for f in &files {
        let (a, b) = collect_allows(&f.path, &f.source);
        allows.extend(a.into_iter().map(|a| (f.path.clone(), a)));
        bad.extend(b);
    }
    Ok((allows, bad))
}

/// A mechanical rewrite for a finding's offending line, when one exists:
/// `(before, after)` of the trimmed source line. Used by `--fix` to print
/// suggestion diffs (the linter never edits files).
pub fn mechanical_fix(finding: &Finding) -> Option<(String, String)> {
    let line = finding.snippet.clone();
    let rewritten = match finding.rule {
        Rule::UnorderedIter => {
            line.replace("HashMap", "BTreeMap").replace("HashSet", "BTreeSet")
        }
        Rule::WallClock if line.contains("Instant::now") => line
            .replace("std::time::Instant::now()", "mptcp_netsim::perf::wall_clock()")
            .replace("Instant::now()", "mptcp_netsim::perf::wall_clock()"),
        Rule::FloatOrd if line.contains(".partial_cmp(") => {
            let mut s = line.replace(".partial_cmp(", ".total_cmp(");
            // total_cmp returns Ordering directly.
            for unwrapper in [").unwrap()", ").expect(\"total order\")"] {
                if let Some(stripped) = s.strip_suffix(unwrapper) {
                    s = format!("{stripped})");
                    break;
                }
            }
            s = s.replace(").unwrap())", "))");
            s
        }
        Rule::FloatOrd if line.contains("f32") => line.replace("f32", "f64"),
        // Guard-heavy dispatch: only the cases above have mechanical
        // rewrites; every other rule needs a judgment call.
        // lint:allow(exhaustive-match, reason = "fall-through is the point: rules without a mechanical rewrite return None, and a new rule correctly defaults to no-fix")
        _ => return None,
    };
    if rewritten == line {
        None
    } else {
        Some((line, rewritten))
    }
}
