//! The determinism & invariant lint rules.
//!
//! Four domain rules the stock compiler and clippy cannot express (see
//! DESIGN.md §3.2d for the policy they enforce):
//!
//! * **`unordered-iter`** (D1) — no `HashMap`/`HashSet` in simulation
//!   crates' library code. Hash containers iterate in per-process
//!   `RandomState` order; one `.iter()` into an ordered sink and the run
//!   is no longer a function of the seed. Conservatively type-level: the
//!   *type* is banned, which bans every iteration of it.
//! * **`wall-clock`** (D2) — no `Instant::now`, `SystemTime`,
//!   `thread_rng`, `RandomState` or `DefaultHasher` anywhere: the only
//!   audited entropy site is `mptcp_netsim::perf::wall_clock()`.
//! * **`float-ord`** (D3) — no `.partial_cmp(…)` call sites (use
//!   `total_cmp`), no `==`/`!=` against float literals (annotate exact
//!   zero-guards), no `f32` in simulation crates (event ordering and
//!   window arithmetic are `f64`/`SimTime`).
//! * **`digest-surface`** (D4) — every `pub struct` in a file marked
//!   `// lint:digest-surface` must have a `DetDigest` impl (normally via
//!   `impl_det_digest!`) somewhere in its crate, so new sim state cannot
//!   escape the `chaos_smoke` bit-identity digest.
//! * **`hot-path`** (D5) — no `BTreeSet`/`BTreeMap` in a file marked
//!   `// lint:hot-path`. Those files are the per-ACK/per-packet hot path
//!   whose ordered-tree bookkeeping was replaced by rotating bitmap
//!   scoreboards; a tree creeping back in reintroduces per-operation
//!   allocation and O(log w) pointer-chasing silently.
//! * **`shard-safety`** (D6) — no `Rc`, `RefCell` or `thread_local!` in a
//!   file marked `// lint:shard-state`. Those files hold the per-shard
//!   simulation state that the sharded engine moves onto worker threads;
//!   non-`Send` shared-ownership cells or thread-pinned statics would
//!   either break the `std::thread::scope` build or smuggle
//!   thread-identity into the deterministic history. Shard state stays
//!   `Send` by construction.
//! * **`panic-free`** (D7) — no `.unwrap()`/`.expect(…)` and no
//!   `panic!`/`unreachable!`/`todo!`/`unimplemented!` in files marked
//!   `lint:hot-path` or `lint:shard-state`, and no slice-indexing
//!   (`expr[…]`) in `lint:hot-path` files: one out-of-window index on the
//!   per-ACK path tears down the whole simulation and every shard behind
//!   it. `assert!`/`debug_assert!` stay legal — they *are* the invariant
//!   documentation. `#[cfg(test)]` items are exempt.
//! * **`exhaustive-match`** (D8) — no `_` or binding wildcard arms in
//!   `match`es over enums marked `// lint:exhaustive` (`AlgorithmKind`,
//!   `FaultAction`, `CcDriver`, [`Rule`] itself): adding BBR or a new
//!   fault action must be a compile error at every dispatch site, not a
//!   silently absorbed case. `#[cfg(test)]` items and `tests/`
//!   integration files are exempt.
//! * **`cast-audit`** (D9) — in `lint:hot-path`/`lint:shard-state` files,
//!   no `as` casts to narrower integer types (`u8`/`u16`/`u32`/`i8`/
//!   `i16`/`i32` — sim state is `u64`/`usize`-word) and no float-sourced
//!   `as`-to-integer casts (silent saturation): route through the checked,
//!   invariant-documented helpers in `crates/netsim/src/cast.rs`.
//!   `#[cfg(test)]` items are exempt.
//! * **`hot-alloc`** (D10) — no `Box::new(…)`, `vec![…]`, `.to_vec()` or
//!   `.clone()` in `lint:hot-path` files: the per-ACK path is kept
//!   allocation-free by the arena/pool machinery (`flow_churn` asserts
//!   the `hot_allocs` counter stays flat), and any of these re-introduces
//!   a silent per-packet allocator round-trip. Creation-time and
//!   counted-growth sites carry explicit allows. `#[cfg(test)]` items are
//!   exempt.
//!
//! D7–D10 are *structural* rules: they run on the recursive-descent parse
//! tree ([`crate::parse`]) rather than the raw token stream, which is what
//! lets them see `#[cfg(test)]` boundaries, `match` arms and cast sources.
//!
//! The escape hatch is a machine-checked annotation:
//!
//! ```text
//! // lint:allow(<rule>, reason = "<non-empty explanation>")
//! ```
//!
//! placed on the offending line or alone on the line directly above it.
//! Malformed or unknown-rule annotations are themselves findings
//! (`bad-annotation`), as are annotations that suppress nothing
//! (`unused-allow`) — allows cannot rot silently.

use crate::lexer::{lex, Tok, TokKind};
use crate::parse::{self, ExprEvent, Item, ItemKind};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// A lint rule identity.
// lint:exhaustive
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// D1: hash containers in sim library code.
    UnorderedIter,
    /// D2: wall-clock / entropy sources.
    WallClock,
    /// D3: partial float comparisons feeding ordering.
    FloatOrd,
    /// D4: pub sim-state types missing the determinism-digest impl.
    DigestSurface,
    /// D5: ordered-tree containers in `lint:hot-path` files.
    HotPath,
    /// D6: non-`Send` cells / thread-pinned statics in `lint:shard-state`
    /// files.
    ShardSafety,
    /// D7: panicking operations in `lint:hot-path`/`lint:shard-state`
    /// files.
    PanicFree,
    /// D8: wildcard arms in `match`es over `lint:exhaustive` enums.
    ExhaustiveMatch,
    /// D9: narrowing / float-sourced `as` casts in marked files.
    CastAudit,
    /// D10: allocating calls (`Box::new`, `vec!`, `.to_vec()`,
    /// `.clone()`) in `lint:hot-path` files.
    HotAlloc,
    /// A `lint:` annotation that is malformed, names an unknown rule, or
    /// has an empty reason.
    BadAnnotation,
    /// A well-formed allow that suppressed no finding.
    UnusedAllow,
}

impl Rule {
    /// Kebab-case name used in diagnostics and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatOrd => "float-ord",
            Rule::DigestSurface => "digest-surface",
            Rule::HotPath => "hot-path",
            Rule::ShardSafety => "shard-safety",
            Rule::PanicFree => "panic-free",
            Rule::ExhaustiveMatch => "exhaustive-match",
            Rule::CastAudit => "cast-audit",
            Rule::HotAlloc => "hot-alloc",
            Rule::BadAnnotation => "bad-annotation",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// Every rule, domain and meta, in policy order (D1–D10 then the two
    /// meta rules). The `--rules` self-test walks this so the policy dump
    /// cannot silently drop one.
    pub fn all() -> &'static [Rule] {
        &[
            Rule::UnorderedIter,
            Rule::WallClock,
            Rule::FloatOrd,
            Rule::DigestSurface,
            Rule::HotPath,
            Rule::ShardSafety,
            Rule::PanicFree,
            Rule::ExhaustiveMatch,
            Rule::CastAudit,
            Rule::HotAlloc,
            Rule::BadAnnotation,
            Rule::UnusedAllow,
        ]
    }

    /// The rules an annotation may allow (the meta rules cannot be
    /// annotated away).
    pub fn allowable() -> &'static [Rule] {
        &[
            Rule::UnorderedIter,
            Rule::WallClock,
            Rule::FloatOrd,
            Rule::DigestSurface,
            Rule::HotPath,
            Rule::ShardSafety,
            Rule::PanicFree,
            Rule::ExhaustiveMatch,
            Rule::CastAudit,
            Rule::HotAlloc,
        ]
    }

    /// Parse an allowable rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::allowable().iter().copied().find(|r| r.name() == name)
    }

    /// Parse any rule name, meta rules included (used by the JSON
    /// findings parser, which round-trips reports that may carry
    /// `bad-annotation`/`unused-allow` entries).
    pub fn from_any_name(name: &str) -> Option<Rule> {
        Rule::all().iter().copied().find(|r| r.name() == name)
    }
}

/// The comma-separated allowable-rule list quoted in diagnostics, built
/// from [`Rule::allowable`] so the text cannot drift from the enum.
fn known_rules_list() -> String {
    Rule::allowable().iter().map(|r| r.name()).collect::<Vec<_>>().join(", ")
}

/// Whether a file is simulation *library* code (D1 and the `f32` ban
/// apply) or supporting code (tests, benches, the umbrella crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `crates/{core,netsim,proto,topology,workload}/src` — full rule set.
    Sim,
    /// Everything else under lint: D2/D3/D4 but not the type-level D1 ban.
    General,
}

/// One file handed to the linter.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Path used in findings (workspace-relative by convention).
    pub path: PathBuf,
    /// Full source text.
    pub source: String,
    /// Rule scope.
    pub scope: Scope,
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it (or annotate it).
    pub suggestion: String,
}

/// A parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// The allowed rule.
    pub rule: Rule,
    /// The stated reason (non-empty by construction).
    pub reason: String,
}

/// Parse every `lint:allow(...)` annotation in `source`. Returns the
/// well-formed allows and a finding for each malformed one.
pub fn collect_allows(path: &Path, source: &str) -> (Vec<Allow>, Vec<Finding>) {
    let toks = lex(source);
    collect_allows_from_tokens(path, source, &toks)
}

/// A `lint:` directive must *lead* its comment (after the comment sigils),
/// so prose that merely mentions the grammar — e.g. module docs quoting
/// `// lint:allow(…)` — is not parsed as a directive.
pub(crate) fn comment_directive(text: &str) -> Option<&str> {
    let body = text.trim_start_matches(['/', '!', '*']).trim_start();
    body.starts_with("lint:").then_some(body)
}

fn collect_allows_from_tokens(path: &Path, source: &str, toks: &[Tok]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if !t.is_comment() || !comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:allow")) {
            continue;
        }
        let target_line = allow_target_line(toks, idx);
        match parse_allow(&t.text) {
            Ok((rule, reason)) => {
                allows.push(Allow { line: t.line, target_line, rule, reason });
            }
            Err(why) => bad.push(Finding {
                rule: Rule::BadAnnotation,
                path: path.to_path_buf(),
                line: t.line,
                message: format!("malformed lint annotation: {why}"),
                snippet: snippet_at(source, t.line),
                suggestion: format!(
                    "write `// lint:allow(<rule>, reason = \"<non-empty>\")` where <rule> is one of: {}",
                    known_rules_list()
                ),
            }),
        }
    }
    (allows, bad)
}

/// The line an allow-comment at token `idx` governs: its own line if code
/// precedes it there (trailing comment), otherwise the line of the next
/// code token (comment-on-its-own-line form).
fn allow_target_line(toks: &[Tok], idx: usize) -> u32 {
    let line = toks[idx].line;
    let trailing = toks[..idx].iter().rev().take_while(|t| t.line == line).any(|t| !t.is_comment());
    if trailing {
        return line;
    }
    toks[idx + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(line)
}

/// Parse `lint:allow(<rule>, reason = "<text>")` out of a comment.
fn parse_allow(comment: &str) -> Result<(Rule, String), String> {
    let rest = comment.split("lint:allow").nth(1).ok_or("missing `lint:allow`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `lint:allow`")?;
    let (rule_name, rest) = rest.split_once(',').ok_or("expected `,` after the rule name")?;
    let rule_name = rule_name.trim();
    let rule = Rule::from_name(rule_name)
        .ok_or_else(|| format!("unknown rule `{rule_name}` (known: {})", known_rules_list()))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("reason").ok_or("expected `reason = \"…\"`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=').ok_or("expected `=` after `reason`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"').ok_or("reason must be a quoted string")?;
    let (reason, _) = rest.split_once('"').ok_or("unterminated reason string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rule, reason.trim().to_string()))
}

fn snippet_at(source: &str, line: u32) -> String {
    source.lines().nth(line as usize - 1).unwrap_or("").trim().to_string()
}

/// One `pub` item in the workspace symbol table.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// `"struct"`, `"enum"`, `"fn"` or `"trait"`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
    /// Declaring file (workspace-relative).
    pub path: PathBuf,
    /// 1-based line of the item keyword.
    pub line: u32,
}

/// The per-workspace symbol table the structural rules consult: every
/// `pub` item's identity, plus the variant lists of `lint:exhaustive`
/// enums (keyed by name — the workspace keeps those names unique, which
/// the symbol collector enforces conservatively by merging duplicates).
#[derive(Debug, Default)]
pub struct Symbols {
    /// `lint:exhaustive` enum name → declared variant names.
    exhaustive_enums: BTreeMap<String, Vec<String>>,
    /// Every `pub` item seen while parsing.
    pub pub_items: Vec<PubItem>,
}

impl Symbols {
    /// Variants of a `lint:exhaustive` enum, if `name` is one.
    pub fn exhaustive_enum(&self, name: &str) -> Option<&[String]> {
        self.exhaustive_enums.get(name).map(Vec::as_slice)
    }

    /// Names of every `lint:exhaustive` enum (for self-tests).
    pub fn exhaustive_enum_names(&self) -> Vec<&str> {
        self.exhaustive_enums.keys().map(String::as_str).collect()
    }
}

/// Build the symbol table for a set of files (normally the whole
/// workspace: D8 must see an enum's `lint:exhaustive` marker even when
/// the `match` lives in a different crate).
pub fn collect_symbols(files: &[FileInput]) -> Symbols {
    let mut syms = Symbols::default();
    for f in files {
        let tree = parse::parse(&lex(&f.source));
        collect_symbols_from_items(&tree.items, f, &mut syms);
    }
    syms
}

fn collect_symbols_from_items(items: &[Item], f: &FileInput, syms: &mut Symbols) {
    for item in items {
        let (kind, name) = match &item.kind {
            ItemKind::Enum(e) => {
                if e.exhaustive {
                    syms.exhaustive_enums
                        .entry(e.name.clone())
                        .or_default()
                        .extend(e.variants.iter().cloned());
                }
                ("enum", e.name.clone())
            }
            ItemKind::Struct { name } => ("struct", name.clone()),
            ItemKind::Fn(fd) => ("fn", fd.name.clone()),
            ItemKind::Trait { name, items } => {
                collect_symbols_from_items(items, f, syms);
                ("trait", name.clone())
            }
            ItemKind::Impl { items, .. } | ItemKind::Mod { items, .. } => {
                collect_symbols_from_items(items, f, syms);
                continue;
            }
        };
        if item.is_pub && !name.is_empty() {
            syms.pub_items.push(PubItem {
                kind,
                name,
                path: f.path.clone(),
                line: item.line,
            });
        }
    }
}

/// Scan one file's code tokens for D1–D3 findings, its parse tree for
/// D7–D9 findings, and both for D4 facts.
struct FileScan {
    findings: Vec<Finding>,
    /// `pub struct`/`pub enum` names declared here: `(name, line, kind)`.
    pub_types: Vec<(String, u32, &'static str)>,
    /// File carries the `lint:digest-surface` marker.
    digest_surface: bool,
    /// Type names with `DetDigest` impl evidence in this file.
    digest_impls: Vec<String>,
}

fn scan_file(f: &FileInput, syms: &Symbols) -> (FileScan, Vec<Allow>, Vec<Finding>) {
    let toks = lex(&f.source);
    let (allows, bad) = collect_allows_from_tokens(&f.path, &f.source, &toks);
    let digest_surface = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:digest-surface"))
    });
    let hot_path = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:hot-path"))
    });
    let shard_state = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:shard-state"))
    });
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();

    let mut findings = Vec::new();
    let mut digest_impls = Vec::new();

    let push = |findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String, suggestion: String| {
        findings.push(Finding {
            rule,
            path: f.path.clone(),
            line,
            message,
            snippet: snippet_at(&f.source, line),
            suggestion,
        });
    };

    for (i, t) in code.iter().enumerate() {
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);

        if t.kind == TokKind::Ident {
            // ---- D1: hash containers (sim library code only) ----
            if f.scope == Scope::Sim
                && matches!(t.text.as_str(), "HashMap" | "HashSet" | "hash_map" | "hash_set")
            {
                push(
                    &mut findings,
                    Rule::UnorderedIter,
                    t.line,
                    format!(
                        "`{}` in simulation library code: iteration order depends on the per-process hasher seed",
                        t.text
                    ),
                    format!(
                        "use `BTree{}`/`Vec` (deterministic order), or annotate: // lint:allow(unordered-iter, reason = \"…\")",
                        if t.text.contains("Set") || t.text.contains("set") { "Set" } else { "Map" }
                    ),
                );
            }

            // ---- D5: ordered trees in declared hot-path files ----
            if hot_path && matches!(t.text.as_str(), "BTreeSet" | "BTreeMap") {
                push(
                    &mut findings,
                    Rule::HotPath,
                    t.line,
                    format!(
                        "`{}` in a `lint:hot-path` file: ordered-tree bookkeeping pays an allocation plus O(log w) pointer-chasing per operation on the per-ACK path",
                        t.text
                    ),
                    "use the rotating-bitmap scoreboards (crates/netsim/src/scoreboard.rs) or a windowed array, or annotate: // lint:allow(hot-path, reason = \"…\")".into(),
                );
            }

            // ---- D6: non-Send state in declared shard-state files ----
            if shard_state {
                let banned = match t.text.as_str() {
                    "Rc" => Some("`Rc` is shared ownership without `Send`"),
                    "RefCell" => Some("`RefCell` is interior mutability without `Sync`"),
                    "thread_local" if next.is_some_and(|n| n.text == "!") => {
                        Some("`thread_local!` pins state to a worker thread")
                    }
                    _ => None,
                };
                if let Some(what) = banned {
                    push(
                        &mut findings,
                        Rule::ShardSafety,
                        t.line,
                        format!(
                            "{what}: shard state in a `lint:shard-state` file moves across worker threads and must stay `Send` by construction"
                        ),
                        "own the state directly (plain fields, `Vec`, `Box`), hand shared read-only tables over as `Arc`, or annotate: // lint:allow(shard-safety, reason = \"…\")".into(),
                    );
                }
            }

            // ---- D2: wall-clock / entropy sources ----
            let wall = match t.text.as_str() {
                "Instant"
                    if next.is_some_and(|n| n.text == "::")
                        && next2.is_some_and(|n| n.text == "now") =>
                {
                    Some("`Instant::now()` reads the host clock")
                }
                "SystemTime" => Some("`SystemTime` reads the host clock"),
                "thread_rng" => Some("`thread_rng` is OS-seeded entropy"),
                "RandomState" => Some("`RandomState` is a per-process-seeded hasher"),
                "DefaultHasher" => Some("`DefaultHasher::new()` hides a seeded `RandomState`"),
                _ => None,
            };
            if let Some(what) = wall {
                push(
                    &mut findings,
                    Rule::WallClock,
                    t.line,
                    format!("{what}: simulation logic must advance only on `SimTime`"),
                    "route perf measurements through `mptcp_netsim::perf::wall_clock()` (the one audited site), seed RNGs from the sim seed, or annotate: // lint:allow(wall-clock, reason = \"…\")".into(),
                );
            }

            // ---- D3: f32 in sim library code ----
            if f.scope == Scope::Sim && t.text == "f32" {
                push(
                    &mut findings,
                    Rule::FloatOrd,
                    t.line,
                    "`f32` in simulation library code: window arithmetic and orderings are `f64`/`SimTime`".into(),
                    "use `f64` (or `SimTime` for times), or annotate: // lint:allow(float-ord, reason = \"…\")".into(),
                );
            }

            // ---- D4 facts: DetDigest impl evidence ----
            if t.text == "impl_det_digest"
                && next.is_some_and(|n| n.text == "!")
                && next2.is_some_and(|n| n.text == "(")
            {
                if let Some(name) = code.get(i + 3).filter(|n| n.kind == TokKind::Ident) {
                    digest_impls.push(name.text.clone());
                }
            }
            if t.text == "DetDigest" && next.is_some_and(|n| n.text == "for") {
                if let Some(name) = code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    digest_impls.push(name.text.clone());
                }
            }
        }

        // ---- D3: `.partial_cmp(` call sites ----
        if t.kind == TokKind::Punct
            && t.text == "."
            && next.is_some_and(|n| n.kind == TokKind::Ident && n.text == "partial_cmp")
        {
            push(
                &mut findings,
                Rule::FloatOrd,
                next.unwrap().line,
                "`.partial_cmp(…)` call site: partial float orderings panic or drift on NaN".into(),
                "use `f64::total_cmp` (IEEE 754 total order), or annotate: // lint:allow(float-ord, reason = \"…\")".into(),
            );
        }

        // ---- D3: `==` / `!=` against a float literal ----
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && code[i - 1].kind == TokKind::Float;
            let next_float = next.is_some_and(|n| n.kind == TokKind::Float);
            if prev_float || next_float {
                push(
                    &mut findings,
                    Rule::FloatOrd,
                    t.line,
                    format!("float `{}` comparison against a literal: exact float equality is a determinism hazard near computed values", t.text),
                    "compare with an explicit tolerance or restructure; for exact zero-guards annotate: // lint:allow(float-ord, reason = \"…\")".into(),
                );
            }
        }
    }

    // ---- Structural rules (D7–D9) + D4 type facts, on the parse tree ----
    let tree = parse::parse(&toks);
    let mut pub_types = Vec::new();
    let cx = TreeCx {
        f,
        hot_path,
        shard_state,
        // Integration-test trees (`tests/` dirs) are test code for D8 just
        // like `#[cfg(test)]` modules are.
        is_test_path: f.path.components().any(|c| c.as_os_str() == "tests"),
        syms,
    };
    walk_tree(&tree.items, false, &cx, &mut pub_types, &mut findings);

    (FileScan { findings, pub_types, digest_surface, digest_impls }, allows, bad)
}

/// Per-file context threaded through the parse-tree walk.
struct TreeCx<'a> {
    f: &'a FileInput,
    hot_path: bool,
    shard_state: bool,
    is_test_path: bool,
    syms: &'a Symbols,
}

fn walk_tree(
    items: &[Item],
    in_test: bool,
    cx: &TreeCx,
    pub_types: &mut Vec<(String, u32, &'static str)>,
    findings: &mut Vec<Finding>,
) {
    for item in items {
        let test = in_test || item.cfg_test;
        match &item.kind {
            ItemKind::Struct { name } => {
                if item.is_pub {
                    pub_types.push((name.clone(), item.line, "struct"));
                }
            }
            ItemKind::Enum(e) => {
                if item.is_pub {
                    pub_types.push((e.name.clone(), item.line, "enum"));
                }
            }
            ItemKind::Fn(fd) => {
                if !test {
                    scan_fn_events(fd, cx, findings);
                }
            }
            ItemKind::Impl { items, .. }
            | ItemKind::Mod { items, .. }
            | ItemKind::Trait { items, .. } => {
                walk_tree(items, test, cx, pub_types, findings);
            }
        }
    }
}

/// Cast targets D9 treats as narrowing: sim state is `u64`/`usize`-word,
/// so an `as` to any of these silently truncates.
const NARROW_INT_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Integer cast targets for the float-source arm of D9.
const INT_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// D7/D8/D9 over one (non-test) fn body's expression events.
fn scan_fn_events(fd: &parse::FnDef, cx: &TreeCx, findings: &mut Vec<Finding>) {
    let marked = cx.hot_path || cx.shard_state;
    let marker = if cx.hot_path { "lint:hot-path" } else { "lint:shard-state" };
    let mut push = |rule: Rule, line: u32, message: String, suggestion: String| {
        findings.push(Finding {
            rule,
            path: cx.f.path.clone(),
            line,
            message,
            snippet: snippet_at(&cx.f.source, line),
            suggestion,
        });
    };
    for ev in &fd.events {
        match ev {
            ExprEvent::MethodCall { name, line }
                if cx.hot_path && matches!(name.as_str(), "to_vec" | "clone") =>
            {
                push(
                    Rule::HotAlloc,
                    *line,
                    format!(
                        "`.{name}(…)` in a `lint:hot-path` file: a hidden allocation (or deep copy) on the per-ACK path defeats the arena/pool recycling that keeps `hot_allocs` flat"
                    ),
                    "reuse pooled storage (`reset_for_reuse`, the ring pool) or copy into a caller-provided buffer; for creation-time or counted-growth sites annotate: // lint:allow(hot-alloc, reason = \"…\")".into(),
                );
            }
            ExprEvent::MacroCall { name, line } if cx.hot_path && name == "vec" => {
                push(
                    Rule::HotAlloc,
                    *line,
                    "`vec![…]` in a `lint:hot-path` file: a fresh heap vector on the per-ACK path defeats the arena/pool recycling that keeps `hot_allocs` flat".into(),
                    "draw from the ring pool / reuse a scratch buffer; for creation-time or counted-growth sites annotate: // lint:allow(hot-alloc, reason = \"…\")".into(),
                );
            }
            ExprEvent::PathCall { head, name, line }
                if cx.hot_path && head == "Box" && name == "new" =>
            {
                push(
                    Rule::HotAlloc,
                    *line,
                    "`Box::new(…)` in a `lint:hot-path` file: a per-event box defeats the arena/pool recycling that keeps `hot_allocs` flat".into(),
                    "store the value inline (the arena columns are plain fields) or pool it; for creation-time sites annotate: // lint:allow(hot-alloc, reason = \"…\")".into(),
                );
            }
            ExprEvent::MethodCall { name, line }
                if marked && matches!(name.as_str(), "unwrap" | "expect") =>
            {
                push(
                    Rule::PanicFree,
                    *line,
                    format!(
                        "`.{name}(…)` in a `{marker}` file: a panic on the per-ACK/shard path tears down the whole simulation (and every shard behind it)"
                    ),
                    "rewrite with `if let` / `let … else` / `unwrap_or*` and document the invariant, or annotate: // lint:allow(panic-free, reason = \"…\")".into(),
                );
            }
            ExprEvent::MacroCall { name, line }
                if marked
                    && matches!(name.as_str(), "panic" | "unreachable" | "todo" | "unimplemented") =>
            {
                push(
                    Rule::PanicFree,
                    *line,
                    format!(
                        "`{name}!` in a `{marker}` file: an explicit panic on the per-ACK/shard path tears down the whole simulation"
                    ),
                    "return a fallback under `debug_assert!` (asserts are the sanctioned invariant documentation), or annotate: // lint:allow(panic-free, reason = \"…\")".into(),
                );
            }
            ExprEvent::Index { line } if cx.hot_path => {
                push(
                    Rule::PanicFree,
                    *line,
                    "slice/array indexing in a `lint:hot-path` file: one out-of-window index panics on the per-ACK path".into(),
                    "use `.get(…)`/`.get_mut(…)` with an explicit fallback, or a single annotated accessor documenting the bound invariant: // lint:allow(panic-free, reason = \"…\")".into(),
                );
            }
            ExprEvent::Cast { target, float_source, line } if marked => {
                if NARROW_INT_TARGETS.contains(&target.as_str()) {
                    push(
                        Rule::CastAudit,
                        *line,
                        format!(
                            "narrowing `as {target}` cast in a `{marker}` file: sim state is u64/usize-word, and `as` truncates silently"
                        ),
                        "route through a bound-checked helper (crates/netsim/src/cast.rs) or `try_into` with a handled error, or annotate: // lint:allow(cast-audit, reason = \"…\")".into(),
                    );
                } else if *float_source && INT_TARGETS.contains(&target.as_str()) {
                    push(
                        Rule::CastAudit,
                        *line,
                        format!(
                            "float-to-integer `as {target}` cast in a `{marker}` file: `as` saturates silently on overflow and maps NaN to 0"
                        ),
                        "route through crates/netsim/src/cast.rs (`f64_to_u64` documents the saturation and debug_asserts finiteness), or annotate: // lint:allow(cast-audit, reason = \"…\")".into(),
                    );
                }
            }
            ExprEvent::Match(m) if !cx.is_test_path => {
                let subject = m
                    .arms
                    .iter()
                    .flat_map(|a| a.heads.iter())
                    .find_map(|(h, _)| cx.syms.exhaustive_enum(h).map(|v| (h.clone(), v)));
                let Some((enum_name, variants)) = subject else { continue };
                for arm in &m.arms {
                    let Some(w) = &arm.wildcard else { continue };
                    let covered: Vec<&str> = m
                        .arms
                        .iter()
                        .flat_map(|a| a.heads.iter())
                        .filter(|(h, _)| h == &enum_name)
                        .filter_map(|(_, v)| v.as_deref())
                        .collect();
                    let missing: Vec<&str> = variants
                        .iter()
                        .map(String::as_str)
                        .filter(|v| !covered.contains(v))
                        .collect();
                    let absorbing = if missing.is_empty() {
                        String::new()
                    } else {
                        format!(" (currently absorbing: {})", missing.join(", "))
                    };
                    push(
                        Rule::ExhaustiveMatch,
                        arm.line,
                        format!(
                            "wildcard arm `{w}` in a `match` over `lint:exhaustive` enum `{enum_name}`: a newly added variant would be absorbed silently instead of failing to compile{absorbing}"
                        ),
                        "spell the remaining variants out (an or-pattern arm keeps it compact), or annotate: // lint:allow(exhaustive-match, reason = \"…\")".into(),
                    );
                }
            }
            _ => {}
        }
    }
}

/// Lint a group of files that form one crate, resolving symbols (the
/// `lint:exhaustive` enum table) from the group itself. The workspace
/// driver uses [`lint_group_with`] so D8 sees cross-crate enums.
pub fn lint_group(files: &[FileInput]) -> Vec<Finding> {
    let syms = collect_symbols(files);
    lint_group_with(files, &syms)
}

/// Lint a group of files that form one crate (D4 impl evidence is
/// resolved crate-wide) against a prebuilt symbol table. Returns all
/// findings, sorted by path then line.
pub fn lint_group_with(files: &[FileInput], syms: &Symbols) -> Vec<Finding> {
    let mut per_file: Vec<(FileScan, Vec<Allow>, Vec<Finding>)> =
        files.iter().map(|f| scan_file(f, syms)).collect();

    // D4: resolve digest-surface types against crate-wide impl evidence.
    let impls: Vec<String> =
        per_file.iter().flat_map(|(s, _, _)| s.digest_impls.iter().cloned()).collect();
    for (idx, f) in files.iter().enumerate() {
        let (scan, _, _) = &per_file[idx];
        if !scan.digest_surface {
            continue;
        }
        let missing: Vec<(String, u32, &'static str)> = scan
            .pub_types
            .iter()
            .filter(|(name, _, _)| !impls.iter().any(|i| i == name))
            .cloned()
            .collect();
        for (name, line, kind) in missing {
            let snippet = snippet_at(&f.source, line);
            let suggestion = if kind == "enum" {
                format!(
                    "add a manual `impl DetDigest for {name}` that tags the arm and hashes its payload (see `CcDriver`), or annotate the enum: // lint:allow(digest-surface, reason = \"…\")"
                )
            } else {
                format!(
                    "add `impl_det_digest!({name} {{ <every field> }});` (use the `skip {{ … }}` block for wall-clock-only fields), or annotate the struct: // lint:allow(digest-surface, reason = \"…\")"
                )
            };
            per_file[idx].0.findings.push(Finding {
                rule: Rule::DigestSurface,
                path: f.path.clone(),
                line,
                message: format!(
                    "`pub {kind} {name}` in a `lint:digest-surface` file has no `DetDigest` impl: its state escapes the chaos_smoke determinism digest"
                ),
                snippet,
                suggestion,
            });
        }
    }

    // Suppression: an allow kills same-rule findings on its target line.
    let mut out = Vec::new();
    for (idx, (scan, allows, bad)) in per_file.iter_mut().enumerate() {
        let f = &files[idx];
        let mut used = vec![false; allows.len()];
        for finding in scan.findings.drain(..) {
            let suppressed = allows.iter().enumerate().find(|(_, a)| {
                a.rule == finding.rule && a.target_line == finding.line
            });
            match suppressed {
                Some((i, _)) => used[i] = true,
                None => out.push(finding),
            }
        }
        for (i, a) in allows.iter().enumerate() {
            if !used[i] {
                out.push(Finding {
                    rule: Rule::UnusedAllow,
                    path: f.path.clone(),
                    line: a.line,
                    message: format!(
                        "`lint:allow({}, …)` suppresses nothing on line {}: stale annotations must be removed",
                        a.rule.name(),
                        a.target_line
                    ),
                    snippet: snippet_at(&f.source, a.line),
                    suggestion: "delete the annotation (or move it onto the offending line)".into(),
                });
            }
        }
        out.append(bad);
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str, scope: Scope) -> FileInput {
        FileInput { path: PathBuf::from("test.rs"), source: src.to_string(), scope }
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_flagged_in_sim_scope_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let sim = lint_group(&[file(src, Scope::Sim)]);
        assert!(sim.iter().all(|f| f.rule == Rule::UnorderedIter));
        assert_eq!(sim.len(), 3, "{sim:?}");
        let gen = lint_group(&[file(src, Scope::General)]);
        assert!(gen.is_empty(), "{gen:?}");
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = "// lint:allow(unordered-iter, reason = \"order-insensitive count\")\nlet m = std::collections::HashMap::new();\n";
        assert!(lint_group(&[file(src, Scope::Sim)]).is_empty());
        // Trailing form.
        let src = "let m = std::collections::HashMap::new(); // lint:allow(unordered-iter, reason = \"count\")\n";
        assert!(lint_group(&[file(src, Scope::Sim)]).is_empty());
    }

    #[test]
    fn unused_allow_and_bad_annotation_are_findings() {
        let src = "// lint:allow(unordered-iter, reason = \"nothing here\")\nlet x = 1;\n";
        assert_eq!(rules(&lint_group(&[file(src, Scope::Sim)])), vec![Rule::UnusedAllow]);
        let src = "// lint:allow(no-such-rule, reason = \"x\")\nlet x = 1;\n";
        assert_eq!(rules(&lint_group(&[file(src, Scope::Sim)])), vec![Rule::BadAnnotation]);
        let src = "// lint:allow(wall-clock, reason = \"\")\nlet t = std::time::Instant::now();\n";
        let f = lint_group(&[file(src, Scope::Sim)]);
        // Empty reason: the annotation is bad AND the site is unprotected.
        assert!(rules(&f).contains(&Rule::BadAnnotation), "{f:?}");
        assert!(rules(&f).contains(&Rule::WallClock), "{f:?}");
    }

    #[test]
    fn wall_clock_sources_flagged_everywhere() {
        for src in [
            "let t = Instant::now();",
            "let t = std::time::SystemTime::now();",
            "let mut r = rand::thread_rng();",
            "let s = RandomState::new();",
            "let h = DefaultHasher::new();",
        ] {
            let f = lint_group(&[file(src, Scope::General)]);
            assert_eq!(rules(&f), vec![Rule::WallClock], "{src}");
        }
        // `Instant` alone (e.g. storing one handed in) is fine.
        assert!(lint_group(&[file("fn f(t: Instant) {}", Scope::General)]).is_empty());
    }

    #[test]
    fn float_ord_variants() {
        let f = lint_group(&[file("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        let f = lint_group(&[file("if x == 0.0 { }", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        let f = lint_group(&[file("if 1e-9 != y { }", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        // fn definitions of partial_cmp (PartialOrd impls) are not calls.
        assert!(lint_group(&[file("fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }", Scope::General)]).is_empty());
        // Integer equality is fine.
        assert!(lint_group(&[file("if x == 0 { }", Scope::General)]).is_empty());
        // f32 only in sim scope.
        assert_eq!(rules(&lint_group(&[file("let x: f32 = 0.5;", Scope::Sim)])), vec![Rule::FloatOrd]);
        assert!(lint_group(&[file("let x: f32 = 0.5;", Scope::General)]).is_empty());
    }

    #[test]
    fn hot_path_bans_trees_in_marked_files_only() {
        let marked = "// lint:hot-path\nuse std::collections::BTreeSet;\nfn f(m: &BTreeMap<u64, u64>) {}\n";
        let f = lint_group(&[file(marked, Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::HotPath, Rule::HotPath], "{f:?}");
        // Unmarked files carry no obligation (scope-independent rule).
        let free = "use std::collections::BTreeSet;\n";
        assert!(lint_group(&[file(free, Scope::Sim)]).is_empty());
        // A tree mentioned only in comments/docs of a marked file is fine.
        let comment_only = "// lint:hot-path\n// A BTreeSet would pay O(log w) here.\nlet x = 1;\n";
        assert!(lint_group(&[file(comment_only, Scope::General)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:hot-path\n// lint:allow(hot-path, reason = \"cold config map, touched once at setup\")\nuse std::collections::BTreeMap;\n";
        assert!(lint_group(&[file(allowed, Scope::General)]).is_empty());
    }

    #[test]
    fn shard_safety_bans_non_send_state_in_marked_files_only() {
        let marked = "// lint:shard-state\nuse std::rc::Rc;\nstruct S { cell: RefCell<u64> }\nthread_local! { static T: u64 = 0; }\n";
        let f = lint_group(&[file(marked, Scope::Sim)]);
        assert_eq!(
            rules(&f),
            vec![Rule::ShardSafety, Rule::ShardSafety, Rule::ShardSafety],
            "{f:?}"
        );
        // Unmarked files carry no obligation (scope-independent rule).
        assert!(lint_group(&[file("use std::rc::Rc;\n", Scope::Sim)]).is_empty());
        // `thread_local` as a plain ident (no `!`) is not the macro.
        let ident_only = "// lint:shard-state\nfn f(thread_local: u64) -> u64 { thread_local }\n";
        assert!(lint_group(&[file(ident_only, Scope::Sim)]).is_empty());
        // Mentions in comments/docs of a marked file are fine.
        let comment_only = "// lint:shard-state\n// An Rc or RefCell here would break Send.\nlet x = 1;\n";
        assert!(lint_group(&[file(comment_only, Scope::General)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:shard-state\n// lint:allow(shard-safety, reason = \"build-time only, never crosses a thread\")\nuse std::rc::Rc;\n";
        assert!(lint_group(&[file(allowed, Scope::General)]).is_empty());
    }

    #[test]
    fn digest_surface_requires_impl_crate_wide() {
        let surface = "// lint:digest-surface\npub struct Stats { pub a: u64 }\n";
        let f = lint_group(&[file(surface, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::DigestSurface]);
        // Impl in a *different* file of the same group satisfies it.
        let impl_file = FileInput {
            path: PathBuf::from("other.rs"),
            source: "impl_det_digest!(Stats { a });\n".into(),
            scope: Scope::Sim,
        };
        assert!(lint_group(&[file(surface, Scope::Sim), impl_file]).is_empty());
        // A manual `impl DetDigest for` also counts.
        let manual = FileInput {
            path: PathBuf::from("manual.rs"),
            source: "impl DetDigest for Stats { fn det_digest(&self, h: &mut DigestWriter) {} }\n".into(),
            scope: Scope::Sim,
        };
        assert!(lint_group(&[file(surface, Scope::Sim), manual]).is_empty());
        // Unmarked files carry no obligation.
        assert!(lint_group(&[file("pub struct Free { pub a: u64 }\n", Scope::Sim)]).is_empty());
    }

    #[test]
    fn digest_surface_covers_pub_enums() {
        let surface = "// lint:digest-surface\npub enum Mode { A, B(u64) }\n";
        let f = lint_group(&[file(surface, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::DigestSurface], "{f:?}");
        assert!(f[0].message.contains("pub enum Mode"), "{f:?}");
        assert!(f[0].suggestion.contains("impl DetDigest for Mode"), "{f:?}");
        // A manual impl anywhere in the group satisfies it.
        let manual = FileInput {
            path: PathBuf::from("manual.rs"),
            source: "impl DetDigest for Mode { fn det_digest(&self, h: &mut DigestWriter) {} }\n"
                .into(),
            scope: Scope::Sim,
        };
        assert!(lint_group(&[file(surface, Scope::Sim), manual]).is_empty());
        // Non-pub enums carry no obligation.
        let private = "// lint:digest-surface\nenum Hidden { A }\n";
        assert!(lint_group(&[file(private, Scope::Sim)]).is_empty());
    }

    #[test]
    fn panic_free_fires_in_marked_non_test_code_only() {
        let marked = "// lint:hot-path\nfn f(x: Option<u64>, xs: &[u64]) -> u64 {\n    let a = x.unwrap();\n    let b = xs[0];\n    panic!(\"{}\", a + b);\n}\n";
        let f = lint_group(&[file(marked, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::PanicFree; 3], "{f:?}");
        // In shard-state files unwrap/expect/panics are banned but
        // indexing is legal (slab accesses are the storage idiom there).
        let shard = marked.replace("lint:hot-path", "lint:shard-state");
        let f = lint_group(&[file(&shard, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::PanicFree; 2], "{f:?}");
        // Unmarked files carry no obligation.
        let free = marked.replace("// lint:hot-path\n", "");
        assert!(lint_group(&[file(&free, Scope::Sim)]).is_empty());
        // #[cfg(test)] items in a marked file are exempt.
        let test_only = "// lint:hot-path\n#[cfg(test)]\nmod tests {\n    fn g(x: Option<u64>) -> u64 { x.unwrap() }\n}\n";
        assert!(lint_group(&[file(test_only, Scope::Sim)]).is_empty());
        // assert!/debug_assert! are the sanctioned invariant form.
        let asserts = "// lint:hot-path\nfn f(n: u64) { assert!(n > 0); debug_assert!(n < 10); }\n";
        assert!(lint_group(&[file(asserts, Scope::Sim)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:hot-path\nfn f(x: Option<u64>) -> u64 {\n    x.unwrap() // lint:allow(panic-free, reason = \"caller checked is_some\")\n}\n";
        assert!(lint_group(&[file(allowed, Scope::Sim)]).is_empty());
    }

    #[test]
    fn exhaustive_match_requires_the_marker_and_spares_tests() {
        let src = "// lint:exhaustive\npub enum Kind { A, B, C }\nfn f(k: Kind) -> u32 {\n    match k {\n        Kind::A => 0,\n        _ => 1,\n    }\n}\n";
        let f = lint_group(&[file(src, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::ExhaustiveMatch], "{f:?}");
        assert!(f[0].message.contains("absorbing: B, C"), "{f:?}");
        // Binding wildcards (with or without a guard) are just as wide.
        let bind = src.replace("_ => 1,", "other if other as u32 > 0 => 1,\n        other => 2,");
        let f = lint_group(&[file(&bind, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::ExhaustiveMatch; 2], "{f:?}");
        // Unmarked enums carry no obligation.
        let free = src.replace("// lint:exhaustive\n", "");
        assert!(lint_group(&[file(&free, Scope::Sim)]).is_empty());
        // Exhaustive spellings are clean.
        let full = src.replace("_ => 1,", "Kind::B | Kind::C => 1,");
        assert!(lint_group(&[file(&full, Scope::Sim)]).is_empty());
        // The marker is resolved cross-file through the symbol table.
        let enum_file = file("// lint:exhaustive\npub enum Kind { A, B }\n", Scope::Sim);
        let match_file = FileInput {
            path: PathBuf::from("user.rs"),
            source: "fn g(k: Kind) -> u32 { match k { Kind::A => 0, _ => 1 } }\n".into(),
            scope: Scope::Sim,
        };
        let f = lint_group(&[enum_file.clone(), match_file.clone()]);
        assert_eq!(rules(&f), vec![Rule::ExhaustiveMatch], "{f:?}");
        // …and `tests/` integration files are exempt.
        let test_file = FileInput {
            path: PathBuf::from("tests/user.rs"),
            source: match_file.source.clone(),
            scope: Scope::General,
        };
        assert!(lint_group(&[enum_file, test_file]).is_empty());
    }

    #[test]
    fn cast_audit_flags_narrowing_and_float_sources_in_marked_files() {
        let marked = "// lint:shard-state\nfn f(n: usize, w: f64) -> u64 {\n    let a = n as u32;\n    let b = (w * 4.0) as u64;\n    let c = n as u64;\n    a as u64 + b + c\n}\n";
        let f = lint_group(&[file(marked, Scope::Sim)]);
        // `n as u32` narrows; `(w * 4.0) as u64` is float-sourced;
        // `n as u64` and `a as u64` widen and stay legal.
        assert_eq!(rules(&f), vec![Rule::CastAudit; 2], "{f:?}");
        assert!(f[0].message.contains("narrowing"), "{f:?}");
        assert!(f[1].message.contains("float-to-integer"), "{f:?}");
        // Unmarked files carry no obligation.
        let free = marked.replace("// lint:shard-state\n", "");
        assert!(lint_group(&[file(&free, Scope::Sim)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:shard-state\nfn f(n: usize) -> u32 {\n    // lint:allow(cast-audit, reason = \"n is a subflow index, bounded by MAX_SUBFLOWS = 64\")\n    n as u32\n}\n";
        assert!(lint_group(&[file(allowed, Scope::Sim)]).is_empty());
    }

    #[test]
    fn hot_alloc_flags_allocating_calls_in_hot_path_files_only() {
        let marked = "// lint:hot-path\nfn f(xs: &[u64]) -> Vec<u64> {\n    let a = Box::new(1u64);\n    let b = vec![0u64; 4];\n    let c = xs.to_vec();\n    let d = c.clone();\n    drop((a, b));\n    d\n}\n";
        let f = lint_group(&[file(marked, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::HotAlloc; 4], "{f:?}");
        // Unmarked files (and shard-state-only files) carry no obligation:
        // shard state legitimately clones at setup/snapshot time.
        let free = marked.replace("// lint:hot-path\n", "");
        assert!(lint_group(&[file(&free, Scope::Sim)]).is_empty());
        let shard = marked.replace("lint:hot-path", "lint:shard-state");
        assert!(lint_group(&[file(&shard, Scope::Sim)]).iter().all(|f| f.rule != Rule::HotAlloc));
        // #[cfg(test)] items in a marked file are exempt.
        let test_only = "// lint:hot-path\n#[cfg(test)]\nmod tests {\n    fn g() -> Vec<u64> { vec![1, 2].to_vec() }\n}\n";
        assert!(lint_group(&[file(test_only, Scope::Sim)]).is_empty());
        // Mentions in comments/docs are fine.
        let comment_only = "// lint:hot-path\n// A vec! or .clone() here would allocate per ACK.\nlet x = 1;\n";
        assert!(lint_group(&[file(comment_only, Scope::General)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:hot-path\nfn f() -> Vec<u64> {\n    // lint:allow(hot-alloc, reason = \"creation-time ring storage, never per-ACK\")\n    vec![0u64; 256]\n}\n";
        assert!(lint_group(&[file(allowed, Scope::Sim)]).is_empty());
    }

    #[test]
    fn symbol_table_records_pub_items_and_exhaustive_enums() {
        let a = file(
            "// lint:exhaustive\npub enum Kind { A, B }\npub struct S;\npub fn run() {}\n",
            Scope::Sim,
        );
        let syms = collect_symbols(&[a]);
        assert_eq!(syms.exhaustive_enum_names(), vec!["Kind"]);
        assert_eq!(syms.exhaustive_enum("Kind").unwrap(), &["A", "B"]);
        assert!(syms.exhaustive_enum("S").is_none());
        let names: Vec<(&str, &str)> =
            syms.pub_items.iter().map(|p| (p.kind, p.name.as_str())).collect();
        assert_eq!(names, vec![("enum", "Kind"), ("struct", "S"), ("fn", "run")]);
    }
}
