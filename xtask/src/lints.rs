//! The determinism & invariant lint rules.
//!
//! Four domain rules the stock compiler and clippy cannot express (see
//! DESIGN.md §3.2d for the policy they enforce):
//!
//! * **`unordered-iter`** (D1) — no `HashMap`/`HashSet` in simulation
//!   crates' library code. Hash containers iterate in per-process
//!   `RandomState` order; one `.iter()` into an ordered sink and the run
//!   is no longer a function of the seed. Conservatively type-level: the
//!   *type* is banned, which bans every iteration of it.
//! * **`wall-clock`** (D2) — no `Instant::now`, `SystemTime`,
//!   `thread_rng`, `RandomState` or `DefaultHasher` anywhere: the only
//!   audited entropy site is `mptcp_netsim::perf::wall_clock()`.
//! * **`float-ord`** (D3) — no `.partial_cmp(…)` call sites (use
//!   `total_cmp`), no `==`/`!=` against float literals (annotate exact
//!   zero-guards), no `f32` in simulation crates (event ordering and
//!   window arithmetic are `f64`/`SimTime`).
//! * **`digest-surface`** (D4) — every `pub struct` in a file marked
//!   `// lint:digest-surface` must have a `DetDigest` impl (normally via
//!   `impl_det_digest!`) somewhere in its crate, so new sim state cannot
//!   escape the `chaos_smoke` bit-identity digest.
//! * **`hot-path`** (D5) — no `BTreeSet`/`BTreeMap` in a file marked
//!   `// lint:hot-path`. Those files are the per-ACK/per-packet hot path
//!   whose ordered-tree bookkeeping was replaced by rotating bitmap
//!   scoreboards; a tree creeping back in reintroduces per-operation
//!   allocation and O(log w) pointer-chasing silently.
//! * **`shard-safety`** (D6) — no `Rc`, `RefCell` or `thread_local!` in a
//!   file marked `// lint:shard-state`. Those files hold the per-shard
//!   simulation state that the sharded engine moves onto worker threads;
//!   non-`Send` shared-ownership cells or thread-pinned statics would
//!   either break the `std::thread::scope` build or smuggle
//!   thread-identity into the deterministic history. Shard state stays
//!   `Send` by construction.
//!
//! The escape hatch is a machine-checked annotation:
//!
//! ```text
//! // lint:allow(<rule>, reason = "<non-empty explanation>")
//! ```
//!
//! placed on the offending line or alone on the line directly above it.
//! Malformed or unknown-rule annotations are themselves findings
//! (`bad-annotation`), as are annotations that suppress nothing
//! (`unused-allow`) — allows cannot rot silently.

use crate::lexer::{lex, Tok, TokKind};
use std::path::{Path, PathBuf};

/// A lint rule identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// D1: hash containers in sim library code.
    UnorderedIter,
    /// D2: wall-clock / entropy sources.
    WallClock,
    /// D3: partial float comparisons feeding ordering.
    FloatOrd,
    /// D4: pub sim-state structs missing the determinism-digest impl.
    DigestSurface,
    /// D5: ordered-tree containers in `lint:hot-path` files.
    HotPath,
    /// D6: non-`Send` cells / thread-pinned statics in `lint:shard-state`
    /// files.
    ShardSafety,
    /// A `lint:` annotation that is malformed, names an unknown rule, or
    /// has an empty reason.
    BadAnnotation,
    /// A well-formed allow that suppressed no finding.
    UnusedAllow,
}

impl Rule {
    /// Kebab-case name used in diagnostics and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::FloatOrd => "float-ord",
            Rule::DigestSurface => "digest-surface",
            Rule::HotPath => "hot-path",
            Rule::ShardSafety => "shard-safety",
            Rule::BadAnnotation => "bad-annotation",
            Rule::UnusedAllow => "unused-allow",
        }
    }

    /// The rules an annotation may allow (the meta rules cannot be
    /// annotated away).
    pub fn allowable() -> &'static [Rule] {
        &[
            Rule::UnorderedIter,
            Rule::WallClock,
            Rule::FloatOrd,
            Rule::DigestSurface,
            Rule::HotPath,
            Rule::ShardSafety,
        ]
    }

    /// Parse an allowable rule name.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::allowable().iter().copied().find(|r| r.name() == name)
    }
}

/// Whether a file is simulation *library* code (D1 and the `f32` ban
/// apply) or supporting code (tests, benches, the umbrella crate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// `crates/{core,netsim,proto,topology,workload}/src` — full rule set.
    Sim,
    /// Everything else under lint: D2/D3/D4 but not the type-level D1 ban.
    General,
}

/// One file handed to the linter.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Path used in findings (workspace-relative by convention).
    pub path: PathBuf,
    /// Full source text.
    pub source: String,
    /// Rule scope.
    pub scope: Scope,
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Which rule fired.
    pub rule: Rule,
    /// File the finding is in.
    pub path: PathBuf,
    /// 1-based line.
    pub line: u32,
    /// What is wrong.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// How to fix it (or annotate it).
    pub suggestion: String,
}

/// A parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Line of the comment itself.
    pub line: u32,
    /// Line whose findings it suppresses.
    pub target_line: u32,
    /// The allowed rule.
    pub rule: Rule,
    /// The stated reason (non-empty by construction).
    pub reason: String,
}

/// Parse every `lint:allow(...)` annotation in `source`. Returns the
/// well-formed allows and a finding for each malformed one.
pub fn collect_allows(path: &Path, source: &str) -> (Vec<Allow>, Vec<Finding>) {
    let toks = lex(source);
    collect_allows_from_tokens(path, source, &toks)
}

/// A `lint:` directive must *lead* its comment (after the comment sigils),
/// so prose that merely mentions the grammar — e.g. module docs quoting
/// `// lint:allow(…)` — is not parsed as a directive.
fn comment_directive(text: &str) -> Option<&str> {
    let body = text.trim_start_matches(['/', '!', '*']).trim_start();
    body.starts_with("lint:").then_some(body)
}

fn collect_allows_from_tokens(path: &Path, source: &str, toks: &[Tok]) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if !t.is_comment() || !comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:allow")) {
            continue;
        }
        let target_line = allow_target_line(toks, idx);
        match parse_allow(&t.text) {
            Ok((rule, reason)) => {
                allows.push(Allow { line: t.line, target_line, rule, reason });
            }
            Err(why) => bad.push(Finding {
                rule: Rule::BadAnnotation,
                path: path.to_path_buf(),
                line: t.line,
                message: format!("malformed lint annotation: {why}"),
                snippet: snippet_at(source, t.line),
                suggestion: "write `// lint:allow(<rule>, reason = \"<non-empty>\")` where <rule> is one of: unordered-iter, wall-clock, float-ord, digest-surface, hot-path, shard-safety".into(),
            }),
        }
    }
    (allows, bad)
}

/// The line an allow-comment at token `idx` governs: its own line if code
/// precedes it there (trailing comment), otherwise the line of the next
/// code token (comment-on-its-own-line form).
fn allow_target_line(toks: &[Tok], idx: usize) -> u32 {
    let line = toks[idx].line;
    let trailing = toks[..idx].iter().rev().take_while(|t| t.line == line).any(|t| !t.is_comment());
    if trailing {
        return line;
    }
    toks[idx + 1..]
        .iter()
        .find(|t| !t.is_comment())
        .map(|t| t.line)
        .unwrap_or(line)
}

/// Parse `lint:allow(<rule>, reason = "<text>")` out of a comment.
fn parse_allow(comment: &str) -> Result<(Rule, String), String> {
    let rest = comment.split("lint:allow").nth(1).ok_or("missing `lint:allow`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('(').ok_or("expected `(` after `lint:allow`")?;
    let (rule_name, rest) = rest.split_once(',').ok_or("expected `,` after the rule name")?;
    let rule_name = rule_name.trim();
    let rule = Rule::from_name(rule_name)
        .ok_or_else(|| format!("unknown rule `{rule_name}` (known: unordered-iter, wall-clock, float-ord, digest-surface, hot-path, shard-safety)"))?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("reason").ok_or("expected `reason = \"…\"`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=').ok_or("expected `=` after `reason`")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('"').ok_or("reason must be a quoted string")?;
    let (reason, _) = rest.split_once('"').ok_or("unterminated reason string")?;
    if reason.trim().is_empty() {
        return Err("reason must not be empty".into());
    }
    Ok((rule, reason.trim().to_string()))
}

fn snippet_at(source: &str, line: u32) -> String {
    source.lines().nth(line as usize - 1).unwrap_or("").trim().to_string()
}

/// Scan one file's code tokens for D1–D3 findings and D4 facts.
struct FileScan {
    findings: Vec<Finding>,
    /// `pub struct` names declared here, with lines.
    pub_structs: Vec<(String, u32)>,
    /// File carries the `lint:digest-surface` marker.
    digest_surface: bool,
    /// Struct names with `DetDigest` impl evidence in this file.
    digest_impls: Vec<String>,
}

fn scan_file(f: &FileInput) -> (FileScan, Vec<Allow>, Vec<Finding>) {
    let toks = lex(&f.source);
    let (allows, bad) = collect_allows_from_tokens(&f.path, &f.source, &toks);
    let digest_surface = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:digest-surface"))
    });
    let hot_path = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:hot-path"))
    });
    let shard_state = toks.iter().any(|t| {
        t.is_comment()
            && comment_directive(&t.text).is_some_and(|d| d.starts_with("lint:shard-state"))
    });
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();

    let mut findings = Vec::new();
    let mut pub_structs = Vec::new();
    let mut digest_impls = Vec::new();

    let push = |findings: &mut Vec<Finding>, rule: Rule, line: u32, message: String, suggestion: String| {
        findings.push(Finding {
            rule,
            path: f.path.clone(),
            line,
            message,
            snippet: snippet_at(&f.source, line),
            suggestion,
        });
    };

    for (i, t) in code.iter().enumerate() {
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);

        if t.kind == TokKind::Ident {
            // ---- D1: hash containers (sim library code only) ----
            if f.scope == Scope::Sim
                && matches!(t.text.as_str(), "HashMap" | "HashSet" | "hash_map" | "hash_set")
            {
                push(
                    &mut findings,
                    Rule::UnorderedIter,
                    t.line,
                    format!(
                        "`{}` in simulation library code: iteration order depends on the per-process hasher seed",
                        t.text
                    ),
                    format!(
                        "use `BTree{}`/`Vec` (deterministic order), or annotate: // lint:allow(unordered-iter, reason = \"…\")",
                        if t.text.contains("Set") || t.text.contains("set") { "Set" } else { "Map" }
                    ),
                );
            }

            // ---- D5: ordered trees in declared hot-path files ----
            if hot_path && matches!(t.text.as_str(), "BTreeSet" | "BTreeMap") {
                push(
                    &mut findings,
                    Rule::HotPath,
                    t.line,
                    format!(
                        "`{}` in a `lint:hot-path` file: ordered-tree bookkeeping pays an allocation plus O(log w) pointer-chasing per operation on the per-ACK path",
                        t.text
                    ),
                    "use the rotating-bitmap scoreboards (crates/netsim/src/scoreboard.rs) or a windowed array, or annotate: // lint:allow(hot-path, reason = \"…\")".into(),
                );
            }

            // ---- D6: non-Send state in declared shard-state files ----
            if shard_state {
                let banned = match t.text.as_str() {
                    "Rc" => Some("`Rc` is shared ownership without `Send`"),
                    "RefCell" => Some("`RefCell` is interior mutability without `Sync`"),
                    "thread_local" if next.is_some_and(|n| n.text == "!") => {
                        Some("`thread_local!` pins state to a worker thread")
                    }
                    _ => None,
                };
                if let Some(what) = banned {
                    push(
                        &mut findings,
                        Rule::ShardSafety,
                        t.line,
                        format!(
                            "{what}: shard state in a `lint:shard-state` file moves across worker threads and must stay `Send` by construction"
                        ),
                        "own the state directly (plain fields, `Vec`, `Box`), hand shared read-only tables over as `Arc`, or annotate: // lint:allow(shard-safety, reason = \"…\")".into(),
                    );
                }
            }

            // ---- D2: wall-clock / entropy sources ----
            let wall = match t.text.as_str() {
                "Instant"
                    if next.is_some_and(|n| n.text == "::")
                        && next2.is_some_and(|n| n.text == "now") =>
                {
                    Some("`Instant::now()` reads the host clock")
                }
                "SystemTime" => Some("`SystemTime` reads the host clock"),
                "thread_rng" => Some("`thread_rng` is OS-seeded entropy"),
                "RandomState" => Some("`RandomState` is a per-process-seeded hasher"),
                "DefaultHasher" => Some("`DefaultHasher::new()` hides a seeded `RandomState`"),
                _ => None,
            };
            if let Some(what) = wall {
                push(
                    &mut findings,
                    Rule::WallClock,
                    t.line,
                    format!("{what}: simulation logic must advance only on `SimTime`"),
                    "route perf measurements through `mptcp_netsim::perf::wall_clock()` (the one audited site), seed RNGs from the sim seed, or annotate: // lint:allow(wall-clock, reason = \"…\")".into(),
                );
            }

            // ---- D3: f32 in sim library code ----
            if f.scope == Scope::Sim && t.text == "f32" {
                push(
                    &mut findings,
                    Rule::FloatOrd,
                    t.line,
                    "`f32` in simulation library code: window arithmetic and orderings are `f64`/`SimTime`".into(),
                    "use `f64` (or `SimTime` for times), or annotate: // lint:allow(float-ord, reason = \"…\")".into(),
                );
            }

            // ---- D4 facts: pub structs + DetDigest impl evidence ----
            if t.text == "pub" {
                // Skip a `pub(crate)` / `pub(in …)` restriction.
                let mut j = i + 1;
                if code.get(j).is_some_and(|n| n.text == "(") {
                    let mut depth = 1;
                    j += 1;
                    while depth > 0 {
                        match code.get(j) {
                            Some(n) if n.text == "(" => depth += 1,
                            Some(n) if n.text == ")" => depth -= 1,
                            None => break,
                            _ => {}
                        }
                        j += 1;
                    }
                }
                if code.get(j).is_some_and(|n| n.text == "struct") {
                    if let Some(name) = code.get(j + 1) {
                        pub_structs.push((name.text.clone(), name.line));
                    }
                }
            }
            if t.text == "impl_det_digest"
                && next.is_some_and(|n| n.text == "!")
                && next2.is_some_and(|n| n.text == "(")
            {
                if let Some(name) = code.get(i + 3).filter(|n| n.kind == TokKind::Ident) {
                    digest_impls.push(name.text.clone());
                }
            }
            if t.text == "DetDigest" && next.is_some_and(|n| n.text == "for") {
                if let Some(name) = code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                    digest_impls.push(name.text.clone());
                }
            }
        }

        // ---- D3: `.partial_cmp(` call sites ----
        if t.kind == TokKind::Punct
            && t.text == "."
            && next.is_some_and(|n| n.kind == TokKind::Ident && n.text == "partial_cmp")
        {
            push(
                &mut findings,
                Rule::FloatOrd,
                next.unwrap().line,
                "`.partial_cmp(…)` call site: partial float orderings panic or drift on NaN".into(),
                "use `f64::total_cmp` (IEEE 754 total order), or annotate: // lint:allow(float-ord, reason = \"…\")".into(),
            );
        }

        // ---- D3: `==` / `!=` against a float literal ----
        if t.kind == TokKind::Punct && (t.text == "==" || t.text == "!=") {
            let prev_float = i > 0 && code[i - 1].kind == TokKind::Float;
            let next_float = next.is_some_and(|n| n.kind == TokKind::Float);
            if prev_float || next_float {
                push(
                    &mut findings,
                    Rule::FloatOrd,
                    t.line,
                    format!("float `{}` comparison against a literal: exact float equality is a determinism hazard near computed values", t.text),
                    "compare with an explicit tolerance or restructure; for exact zero-guards annotate: // lint:allow(float-ord, reason = \"…\")".into(),
                );
            }
        }
    }

    (
        FileScan { findings, pub_structs, digest_surface, digest_impls },
        allows,
        bad,
    )
}

/// Lint a group of files that form one crate (D4 impl evidence is
/// resolved crate-wide). Returns all findings, sorted by path then line.
pub fn lint_group(files: &[FileInput]) -> Vec<Finding> {
    let mut per_file: Vec<(FileScan, Vec<Allow>, Vec<Finding>)> =
        files.iter().map(scan_file).collect();

    // D4: resolve digest-surface structs against crate-wide impl evidence.
    let impls: Vec<String> =
        per_file.iter().flat_map(|(s, _, _)| s.digest_impls.iter().cloned()).collect();
    for (idx, f) in files.iter().enumerate() {
        let (scan, _, _) = &per_file[idx];
        if !scan.digest_surface {
            continue;
        }
        let missing: Vec<(String, u32)> = scan
            .pub_structs
            .iter()
            .filter(|(name, _)| !impls.iter().any(|i| i == name))
            .cloned()
            .collect();
        for (name, line) in missing {
            let snippet = snippet_at(&f.source, line);
            per_file[idx].0.findings.push(Finding {
                rule: Rule::DigestSurface,
                path: f.path.clone(),
                line,
                message: format!(
                    "`pub struct {name}` in a `lint:digest-surface` file has no `DetDigest` impl: its state escapes the chaos_smoke determinism digest"
                ),
                snippet,
                suggestion: format!(
                    "add `impl_det_digest!({name} {{ <every field> }});` (use the `skip {{ … }}` block for wall-clock-only fields), or annotate the struct: // lint:allow(digest-surface, reason = \"…\")"
                ),
            });
        }
    }

    // Suppression: an allow kills same-rule findings on its target line.
    let mut out = Vec::new();
    for (idx, (scan, allows, bad)) in per_file.iter_mut().enumerate() {
        let f = &files[idx];
        let mut used = vec![false; allows.len()];
        for finding in scan.findings.drain(..) {
            let suppressed = allows.iter().enumerate().find(|(_, a)| {
                a.rule == finding.rule && a.target_line == finding.line
            });
            match suppressed {
                Some((i, _)) => used[i] = true,
                None => out.push(finding),
            }
        }
        for (i, a) in allows.iter().enumerate() {
            if !used[i] {
                out.push(Finding {
                    rule: Rule::UnusedAllow,
                    path: f.path.clone(),
                    line: a.line,
                    message: format!(
                        "`lint:allow({}, …)` suppresses nothing on line {}: stale annotations must be removed",
                        a.rule.name(),
                        a.target_line
                    ),
                    snippet: snippet_at(&f.source, a.line),
                    suggestion: "delete the annotation (or move it onto the offending line)".into(),
                });
            }
        }
        out.append(bad);
    }
    out.sort_by(|a, b| a.path.cmp(&b.path).then(a.line.cmp(&b.line)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str, scope: Scope) -> FileInput {
        FileInput { path: PathBuf::from("test.rs"), source: src.to_string(), scope }
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_flagged_in_sim_scope_only() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let sim = lint_group(&[file(src, Scope::Sim)]);
        assert!(sim.iter().all(|f| f.rule == Rule::UnorderedIter));
        assert_eq!(sim.len(), 3, "{sim:?}");
        let gen = lint_group(&[file(src, Scope::General)]);
        assert!(gen.is_empty(), "{gen:?}");
    }

    #[test]
    fn allow_suppresses_and_is_marked_used() {
        let src = "// lint:allow(unordered-iter, reason = \"order-insensitive count\")\nlet m = std::collections::HashMap::new();\n";
        assert!(lint_group(&[file(src, Scope::Sim)]).is_empty());
        // Trailing form.
        let src = "let m = std::collections::HashMap::new(); // lint:allow(unordered-iter, reason = \"count\")\n";
        assert!(lint_group(&[file(src, Scope::Sim)]).is_empty());
    }

    #[test]
    fn unused_allow_and_bad_annotation_are_findings() {
        let src = "// lint:allow(unordered-iter, reason = \"nothing here\")\nlet x = 1;\n";
        assert_eq!(rules(&lint_group(&[file(src, Scope::Sim)])), vec![Rule::UnusedAllow]);
        let src = "// lint:allow(no-such-rule, reason = \"x\")\nlet x = 1;\n";
        assert_eq!(rules(&lint_group(&[file(src, Scope::Sim)])), vec![Rule::BadAnnotation]);
        let src = "// lint:allow(wall-clock, reason = \"\")\nlet t = std::time::Instant::now();\n";
        let f = lint_group(&[file(src, Scope::Sim)]);
        // Empty reason: the annotation is bad AND the site is unprotected.
        assert!(rules(&f).contains(&Rule::BadAnnotation), "{f:?}");
        assert!(rules(&f).contains(&Rule::WallClock), "{f:?}");
    }

    #[test]
    fn wall_clock_sources_flagged_everywhere() {
        for src in [
            "let t = Instant::now();",
            "let t = std::time::SystemTime::now();",
            "let mut r = rand::thread_rng();",
            "let s = RandomState::new();",
            "let h = DefaultHasher::new();",
        ] {
            let f = lint_group(&[file(src, Scope::General)]);
            assert_eq!(rules(&f), vec![Rule::WallClock], "{src}");
        }
        // `Instant` alone (e.g. storing one handed in) is fine.
        assert!(lint_group(&[file("fn f(t: Instant) {}", Scope::General)]).is_empty());
    }

    #[test]
    fn float_ord_variants() {
        let f = lint_group(&[file("xs.sort_by(|a, b| a.partial_cmp(b).unwrap());", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        let f = lint_group(&[file("if x == 0.0 { }", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        let f = lint_group(&[file("if 1e-9 != y { }", Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::FloatOrd]);
        // fn definitions of partial_cmp (PartialOrd impls) are not calls.
        assert!(lint_group(&[file("fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }", Scope::General)]).is_empty());
        // Integer equality is fine.
        assert!(lint_group(&[file("if x == 0 { }", Scope::General)]).is_empty());
        // f32 only in sim scope.
        assert_eq!(rules(&lint_group(&[file("let x: f32 = 0.5;", Scope::Sim)])), vec![Rule::FloatOrd]);
        assert!(lint_group(&[file("let x: f32 = 0.5;", Scope::General)]).is_empty());
    }

    #[test]
    fn hot_path_bans_trees_in_marked_files_only() {
        let marked = "// lint:hot-path\nuse std::collections::BTreeSet;\nfn f(m: &BTreeMap<u64, u64>) {}\n";
        let f = lint_group(&[file(marked, Scope::General)]);
        assert_eq!(rules(&f), vec![Rule::HotPath, Rule::HotPath], "{f:?}");
        // Unmarked files carry no obligation (scope-independent rule).
        let free = "use std::collections::BTreeSet;\n";
        assert!(lint_group(&[file(free, Scope::Sim)]).is_empty());
        // A tree mentioned only in comments/docs of a marked file is fine.
        let comment_only = "// lint:hot-path\n// A BTreeSet would pay O(log w) here.\nlet x = 1;\n";
        assert!(lint_group(&[file(comment_only, Scope::General)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:hot-path\n// lint:allow(hot-path, reason = \"cold config map, touched once at setup\")\nuse std::collections::BTreeMap;\n";
        assert!(lint_group(&[file(allowed, Scope::General)]).is_empty());
    }

    #[test]
    fn shard_safety_bans_non_send_state_in_marked_files_only() {
        let marked = "// lint:shard-state\nuse std::rc::Rc;\nstruct S { cell: RefCell<u64> }\nthread_local! { static T: u64 = 0; }\n";
        let f = lint_group(&[file(marked, Scope::Sim)]);
        assert_eq!(
            rules(&f),
            vec![Rule::ShardSafety, Rule::ShardSafety, Rule::ShardSafety],
            "{f:?}"
        );
        // Unmarked files carry no obligation (scope-independent rule).
        assert!(lint_group(&[file("use std::rc::Rc;\n", Scope::Sim)]).is_empty());
        // `thread_local` as a plain ident (no `!`) is not the macro.
        let ident_only = "// lint:shard-state\nfn f(thread_local: u64) -> u64 { thread_local }\n";
        assert!(lint_group(&[file(ident_only, Scope::Sim)]).is_empty());
        // Mentions in comments/docs of a marked file are fine.
        let comment_only = "// lint:shard-state\n// An Rc or RefCell here would break Send.\nlet x = 1;\n";
        assert!(lint_group(&[file(comment_only, Scope::General)]).is_empty());
        // The escape hatch works like every other rule's.
        let allowed = "// lint:shard-state\n// lint:allow(shard-safety, reason = \"build-time only, never crosses a thread\")\nuse std::rc::Rc;\n";
        assert!(lint_group(&[file(allowed, Scope::General)]).is_empty());
    }

    #[test]
    fn digest_surface_requires_impl_crate_wide() {
        let surface = "// lint:digest-surface\npub struct Stats { pub a: u64 }\n";
        let f = lint_group(&[file(surface, Scope::Sim)]);
        assert_eq!(rules(&f), vec![Rule::DigestSurface]);
        // Impl in a *different* file of the same group satisfies it.
        let impl_file = FileInput {
            path: PathBuf::from("other.rs"),
            source: "impl_det_digest!(Stats { a });\n".into(),
            scope: Scope::Sim,
        };
        assert!(lint_group(&[file(surface, Scope::Sim), impl_file]).is_empty());
        // A manual `impl DetDigest for` also counts.
        let manual = FileInput {
            path: PathBuf::from("manual.rs"),
            source: "impl DetDigest for Stats { fn det_digest(&self, h: &mut DigestWriter) {} }\n".into(),
            scope: Scope::Sim,
        };
        assert!(lint_group(&[file(surface, Scope::Sim), manual]).is_empty());
        // Unmarked files carry no obligation.
        assert!(lint_group(&[file("pub struct Free { pub a: u64 }\n", Scope::Sim)]).is_empty());
    }
}
