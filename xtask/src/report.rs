//! Machine-readable findings reports.
//!
//! Two emitters sit behind `cargo xtask lint --format …`:
//!
//! * **`json`** — a versioned findings document for CI artifacts and
//!   external tooling. The format round-trips: [`findings_from_json`] is
//!   a real (if minimal) JSON parser, and the fixture self-tests feed
//!   every emitted report back through it.
//! * **`github`** — GitHub Actions workflow commands (`::error
//!   file=…,line=…,title=…::message`), which the Actions runner turns
//!   into inline PR annotations.
//!
//! Both are dependency-free by the same policy as the lexer: the linter
//! must build in an offline container with nothing but the toolchain.

use crate::lints::{Finding, Rule};
use std::path::PathBuf;

/// Version stamp of the JSON findings document; bump on breaking shape
/// changes so downstream tooling can refuse politely.
pub const JSON_FORMAT_VERSION: u64 = 1;

/// Serialize findings as a versioned JSON document.
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"version\": {JSON_FORMAT_VERSION},\n  \"count\": {},\n  \"findings\": [",
        findings.len()
    ));
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"message\": {}, \"snippet\": {}, \"suggestion\": {}}}",
            esc(f.rule.name()),
            esc(&f.path.display().to_string()),
            f.line,
            esc(&f.message),
            esc(&f.snippet),
            esc(&f.suggestion),
        ));
    }
    if !findings.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Render findings as GitHub Actions `::error` workflow commands, one
/// line per finding.
pub fn github_annotations(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        // Workflow-command grammar: properties are `,`/`:`-delimited, so
        // they use %-escapes; the free-text message escapes newlines too.
        out.push_str(&format!(
            "::error file={},line={},title=xtask lint [{}]::{}\n",
            esc_prop(&f.path.display().to_string()),
            f.line,
            esc_prop(f.rule.name()),
            esc_data(&format!("{} | help: {}", f.message, f.suggestion)),
        ));
    }
    out
}

/// Parse a document produced by [`findings_to_json`] back into findings.
/// Unknown rule names, missing fields and malformed JSON are errors —
/// the round-trip self-test leans on that strictness.
pub fn findings_from_json(text: &str) -> Result<Vec<Finding>, String> {
    let mut p = JsonParser { b: text.as_bytes(), i: 0 };
    let doc = p.value()?;
    p.skip_ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    let Json::Object(fields) = doc else { return Err("top level must be an object".into()) };
    let version = fields
        .iter()
        .find(|(k, _)| k == "version")
        .and_then(|(_, v)| v.as_u64())
        .ok_or("missing numeric `version`")?;
    if version != JSON_FORMAT_VERSION {
        return Err(format!("unsupported findings version {version} (expected {JSON_FORMAT_VERSION})"));
    }
    let Some(Json::Array(items)) = fields.iter().find(|(k, _)| k == "findings").map(|(_, v)| v)
    else {
        return Err("missing `findings` array".into());
    };
    let mut out = Vec::new();
    for (idx, item) in items.iter().enumerate() {
        let Json::Object(f) = item else {
            return Err(format!("finding {idx} is not an object"));
        };
        let get_str = |key: &str| -> Result<String, String> {
            f.iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_str().map(str::to_string))
                .ok_or_else(|| format!("finding {idx}: missing string `{key}`"))
        };
        let rule_name = get_str("rule")?;
        let rule = Rule::from_any_name(&rule_name)
            .ok_or_else(|| format!("finding {idx}: unknown rule `{rule_name}`"))?;
        let line = f
            .iter()
            .find(|(k, _)| k == "line")
            .and_then(|(_, v)| v.as_u64())
            .ok_or_else(|| format!("finding {idx}: missing numeric `line`"))?;
        out.push(Finding {
            rule,
            path: PathBuf::from(get_str("path")?),
            line: u32::try_from(line).map_err(|_| format!("finding {idx}: line out of range"))?,
            message: get_str("message")?,
            snippet: get_str("snippet")?,
            suggestion: get_str("suggestion")?,
        });
    }
    if out.len() as u64
        != fields.iter().find(|(k, _)| k == "count").and_then(|(_, v)| v.as_u64()).unwrap_or(out.len() as u64)
    {
        return Err("`count` disagrees with the findings array length".into());
    }
    Ok(out)
}

/// JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escaping for workflow-command *property* values.
fn esc_prop(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A").replace(':', "%3A").replace(',', "%2C")
}

/// Escaping for workflow-command *message* data.
fn esc_data(s: &str) -> String {
    s.replace('%', "%25").replace('\r', "%0D").replace('\n', "%0A")
}

/// The minimal JSON value model the findings parser needs.
enum Json {
    Object(Vec<(String, Json)>),
    Array(Vec<Json>),
    Str(String),
    Num(f64),
    Bool,
    Null,
}

impl Json {
    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            // Report numbers are small integers; reject fractions.
            // lint:allow(float-ord, reason = "exact integer-ness test: fract() of an in-range integral f64 is exactly 0.0, so == is the correct predicate, not a tolerance bug")
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    b: &'a [u8],
    i: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => {
                self.i += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.i += 1;
                    return Ok(Json::Object(fields));
                }
                loop {
                    self.expect(b'"')?;
                    self.i -= 1;
                    let key = self.string()?;
                    self.expect(b':')?;
                    fields.push((key, self.value()?));
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b'}') => {
                            self.i += 1;
                            return Ok(Json::Object(fields));
                        }
                        _ => return Err(format!("expected `,` or `}}` at byte {}", self.i)),
                    }
                }
            }
            b'[' => {
                self.i += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek() {
                        Some(b',') => self.i += 1,
                        Some(b']') => {
                            self.i += 1;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at byte {}", self.i)),
                    }
                }
            }
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.lit("true", Json::Bool),
            b'f' => self.lit("false", Json::Bool),
            b'n' => self.lit("null", Json::Null),
            c if c == b'-' || c.is_ascii_digit() => self.number(),
            c => Err(format!("unexpected `{}` at byte {}", c as char, self.i)),
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.b.get(self.i).copied().ok_or("unterminated escape")? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            // Reports never emit surrogate pairs (they
                            // only \u-escape control characters), so a
                            // lone code point suffices.
                            out.push(char::from_u32(hex).ok_or("bad \\u code point")?);
                            self.i += 4;
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                    self.i += 1;
                }
                c if c < 0x80 => {
                    out.push(c as char);
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole code point.
                    let s = std::str::from_utf8(&self.b[self.i..]).map_err(|_| "bad utf-8")?;
                    let ch = s.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![
            Finding {
                rule: Rule::PanicFree,
                path: PathBuf::from("crates/netsim/src/tcp.rs"),
                line: 42,
                message: "`.unwrap(…)` with \"quotes\", a \\ backslash\nand a newline".into(),
                snippet: "let x = y.unwrap();".into(),
                suggestion: "rewrite with `let … else`".into(),
            },
            Finding {
                rule: Rule::BadAnnotation,
                path: PathBuf::from("src/weird%path,name.rs"),
                line: 7,
                message: "unicode: héllo — dash".into(),
                snippet: String::new(),
                suggestion: "fix: it".into(),
            },
        ]
    }

    #[test]
    fn json_round_trips_exactly() {
        let original = sample();
        let parsed = findings_from_json(&findings_to_json(&original)).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.iter().zip(&parsed) {
            assert_eq!(a.rule, b.rule);
            assert_eq!(a.path, b.path);
            assert_eq!(a.line, b.line);
            assert_eq!(a.message, b.message);
            assert_eq!(a.snippet, b.snippet);
            assert_eq!(a.suggestion, b.suggestion);
        }
    }

    #[test]
    fn empty_report_is_valid_and_round_trips() {
        let text = findings_to_json(&[]);
        assert!(text.contains("\"count\": 0"), "{text}");
        assert!(findings_from_json(&text).unwrap().is_empty());
    }

    #[test]
    fn parser_rejects_drifted_documents() {
        assert!(findings_from_json("{}").is_err());
        assert!(findings_from_json("{\"version\": 99, \"findings\": []}").is_err());
        let bad_rule = "{\"version\": 1, \"count\": 1, \"findings\": [{\"rule\": \"no-such\", \"path\": \"x\", \"line\": 1, \"message\": \"m\", \"snippet\": \"\", \"suggestion\": \"s\"}]}";
        assert!(findings_from_json(bad_rule).is_err());
        let bad_count = findings_to_json(&sample()).replace("\"count\": 2", "\"count\": 3");
        assert!(findings_from_json(&bad_count).is_err());
    }

    #[test]
    fn github_annotations_escape_the_command_grammar() {
        let out = github_annotations(&sample());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("::error file=crates/netsim/src/tcp.rs,line=42,"), "{out}");
        assert!(lines[0].contains("title=xtask lint [panic-free]"), "{out}");
        // The embedded newline must be %-escaped, not literal.
        assert!(lines[0].contains("%0A"), "{out}");
        // Property-position commas/colons are escaped.
        assert!(lines[1].contains("file=src/weird%25path%2Cname.rs"), "{out}");
    }
}
